"""Property-based certification of :class:`repro.streams.StreamMemory`.

The fast replay paths (vectorized analytic accounting, merged
cache-sim address batches) must be *exactly* equivalent to lowering
the same stream back to element-at-a-time ``MemoryModel`` calls.  The
oracle here is the replayer's own fallback path, forced by handing it
a trivial **subclass** of the real model -- the dispatch keys on the
exact type, so a subclass takes the per-call route over identical
accounting code.  Randomized streams (seeded, so failures replay) then
certify equivalence over the whole op vocabulary rather than just the
shapes today's kernels happen to emit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.machine.cache import CacheHierarchySpec, CacheLevelSpec, TLBSpec
from repro.machine.memory import CacheSimMemory, CountingMemory
from repro.streams import StreamMemory, StreamOp, concat_ranges, rand_op, seq_op

#: a deliberately tiny hierarchy so modest arrays miss at every level
TINY = CacheHierarchySpec(l1=CacheLevelSpec(1024, 2),
                          l2=CacheLevelSpec(4096, 4),
                          l3=CacheLevelSpec(16384, 8),
                          tlb=TLBSpec(4, 4096))


class OracleCounting(CountingMemory):
    """Same accounting, different exact type: replay takes the
    element-at-a-time fallback instead of the vectorized fast path."""


class OracleCacheSim(CacheSimMemory):
    """Forces per-call ``sim.access`` instead of one merged batch."""


ARRAYS = (("frontier", 96, 8), ("state", 2048, 8), ("adj", 40_000, 4))


def _register(mem):
    return [mem.register(name, size, itemsize=itemsize)
            for name, size, itemsize in ARRAYS]


def _random_stream(rng, handles) -> list[StreamOp]:
    """A random op list spanning the whole StreamOp vocabulary."""
    ops = []
    for _ in range(int(rng.integers(1, 7))):
        verb = str(rng.choice(["read", "write", "faa", "cas", "lock"]))
        h = handles[int(rng.integers(len(handles)))]
        if rng.random() < 0.3:
            # streaming-range op (adjacency scans, owned-range writes)
            verb = str(rng.choice(["read", "write"]))
            nseg = int(rng.integers(1, 6))
            counts = rng.integers(0, 40, nseg)
            starts = (rng.integers(0, max(h.size // 2, 1), nseg)
                      if rng.random() < 0.5 else None)
            ops.append(seq_op(verb, h, counts, starts=starts))
            continue
        nseg = int(rng.integers(1, 6))
        sizes = rng.integers(0, 9, nseg)
        idx = rng.integers(0, h.size, int(sizes.sum()))
        seg = np.r_[0, np.cumsum(sizes)]
        counts = None
        if rng.random() < 0.3:
            # the interpreter's count= override (e.g. a 2-item offset
            # read issued at one scalar index)
            counts = sizes.copy()
            counts[sizes > 0] += rng.integers(0, 3, int((sizes > 0).sum()))
        mode = "rand"
        if verb == "read" and rng.random() < 0.2:
            mode = "cached"
        batched = verb in ("faa", "cas") and rng.random() < 0.5
        successes = None
        if verb == "cas" and rng.random() < 0.5:
            eff = counts if counts is not None else sizes
            successes = rng.integers(0, eff + 1)
        covers = None
        if verb in ("faa", "cas", "lock") and rng.random() < 0.3:
            other = handles[int(rng.integers(len(handles)))]
            covers = [(other, rng.integers(0, other.size, idx.size))]
        ops.append(rand_op(verb, h, idx, seg=seg, counts=counts, mode=mode,
                           batched=batched, successes=successes,
                           covers=covers))
    return ops


def _lockstep_stream(rng, handles) -> list[StreamOp]:
    """Ops sharing one segmentation, like a kernel body's per-vertex
    loop touching several arrays (the ``interleave=True`` shape)."""
    nseg = int(rng.integers(1, 8))
    sizes = rng.integers(0, 6, nseg)
    seg = np.r_[0, np.cumsum(sizes)]
    ops = []
    for verb in ("read", "faa", "write"):
        h = handles[int(rng.integers(len(handles)))]
        idx = rng.integers(0, h.size, int(sizes.sum()))
        ops.append(rand_op(verb, h, idx, seg=seg))
    return ops


class TestCountingEquivalence:
    @pytest.mark.parametrize("seed", range(30))
    def test_random_stream_matches_oracle(self, seed):
        rng = np.random.default_rng(seed)
        fast, oracle = CountingMemory(TINY), OracleCounting(TINY)
        handles = _register(fast)
        _register(oracle)
        ops = _random_stream(rng, handles)
        StreamMemory(fast).replay(ops)
        StreamMemory(oracle).replay(ops)
        assert fast.counters.to_dict() == oracle.counters.to_dict()

    def test_misses_actually_accrue(self):
        # guard against vacuous equality: a big streaming read under
        # the tiny hierarchy must register misses at every level
        mem = CountingMemory(TINY)
        [_, _, adj] = _register(mem)
        StreamMemory(mem).replay(
            [seq_op("read", adj, counts=np.array([adj.size]))])
        d = mem.counters.to_dict()
        assert d["reads"] == adj.size
        assert d["l1_misses"] > 0 and d["tlb_d_misses"] > 0


class TestCacheSimEquivalence:
    @pytest.mark.parametrize("seed", range(15))
    def test_random_stream_matches_oracle(self, seed):
        rng = np.random.default_rng(1000 + seed)
        fast, oracle = CacheSimMemory(TINY), OracleCacheSim(TINY)
        handles = _register(fast)
        _register(oracle)
        ops = _random_stream(rng, handles)
        StreamMemory(fast).replay(ops)
        StreamMemory(oracle).replay(ops)
        assert fast.counters.to_dict() == oracle.counters.to_dict()

    @pytest.mark.parametrize("seed", range(15))
    def test_interleaved_replay_matches_lockstep_oracle(self, seed):
        rng = np.random.default_rng(2000 + seed)
        fast, oracle = CacheSimMemory(TINY), OracleCacheSim(TINY)
        handles = _register(fast)
        _register(oracle)
        ops = _lockstep_stream(rng, handles)
        StreamMemory(fast).replay(ops, interleave=True)
        StreamMemory(oracle).replay(ops, interleave=True)
        assert fast.counters.to_dict() == oracle.counters.to_dict()

    def test_merged_addresses_preserve_lockstep_order(self):
        mem = CacheSimMemory(TINY)
        a, b, _ = _register(mem)
        seg = np.array([0, 2, 3])
        op1 = rand_op("read", a, np.array([5, 6, 7]), seg=seg)
        op2 = rand_op("write", b, np.array([1, 2, 3]), seg=seg)
        merged = StreamMemory(mem)._merged_addresses([op1, op2],
                                                     interleave=True)
        # segment 0 of op1, segment 0 of op2, segment 1 of op1, ...
        expected = np.concatenate([
            a.addr([5, 6]), b.addr([1, 2]), a.addr([7]), b.addr([3])])
        assert np.array_equal(merged, expected)


class TestTallyRules:
    """Per-op counter deltas replicate the MemoryModel verb rules."""

    def _delta(self, op) -> dict:
        mem = CountingMemory(TINY)
        StreamMemory(mem).replay([op])
        return {k: v for k, v in mem.counters.to_dict().items() if v}

    def test_cas_successes_override_write_count(self):
        _, state, _ = _register(CountingMemory(TINY))
        op = rand_op("cas", state, np.arange(6),
                     seg=np.array([0, 3, 6]), successes=np.array([2, 0]))
        d = self._delta(op)
        assert d["cas"] == 6 and d["atomics"] == 6 and d["reads"] == 6
        assert d["writes"] == 2
        assert d["branches_uncond"] == 6

    def test_batched_faa_is_discount_tagged(self):
        mem = CountingMemory(TINY)
        _, state, _ = _register(mem)
        op = rand_op("faa", state, np.arange(5), batched=True)
        d = self._delta(op)
        assert d["faa"] == 5 and d["atomics_batched"] == 5
        assert d["reads"] == 5 and d["writes"] == 5

    def test_lock_costs_word_read_and_write(self):
        mem = CountingMemory(TINY)
        _, state, _ = _register(mem)
        d = self._delta(rand_op("lock", state, np.arange(4)))
        assert d["locks"] == 4 and d["reads"] == 4 and d["writes"] == 4

    def test_cached_read_counts_loads_but_never_misses(self):
        mem = CountingMemory(TINY)
        _, _, adj = _register(mem)
        StreamMemory(mem).replay(
            [rand_op("read", adj, np.arange(100), mode="cached")])
        d = mem.counters.to_dict()
        assert d["reads"] == 100 and d["l1_misses"] == 0


class TestStreamOpContract:
    def test_unknown_verb_rejected(self):
        mem = CountingMemory(TINY)
        h = mem.register("x", 8)
        with pytest.raises(ValueError, match="unknown stream verb"):
            StreamOp("prefetch", h, idx=np.arange(3))

    def test_idx_or_counts_required(self):
        mem = CountingMemory(TINY)
        h = mem.register("x", 8)
        with pytest.raises(ValueError, match="idx .* or counts"):
            StreamOp("read", h)

    def test_default_segmentation_is_one_segment(self):
        mem = CountingMemory(TINY)
        h = mem.register("x", 8)
        op = rand_op("read", h, np.array([3, 1, 2]))
        assert op.nseg == 1 and op.total == 3
        assert np.array_equal(op.seg, [0, 3])

    def test_counts_default_to_segment_sizes(self):
        mem = CountingMemory(TINY)
        h = mem.register("x", 8)
        op = rand_op("read", h, np.arange(5), seg=np.array([0, 2, 2, 5]))
        assert np.array_equal(op.counts, [2, 0, 3])
        assert np.array_equal(op.address_seg_ids(), [0, 0, 2, 2, 2])

    def test_replay_tolerates_nones_and_empty(self):
        mem = CountingMemory(TINY)
        h = mem.register("x", 8)
        sm = StreamMemory(mem)
        sm.replay([])
        sm.replay([None, rand_op("read", h, np.arange(2)), None])
        assert mem.counters.to_dict()["reads"] == 2

    def test_replay_notifies_wrapped_model_hook(self):
        mem = CountingMemory(TINY)
        h = mem.register("x", 8)
        seen = []
        mem.on_stream_replay = seen.append
        ops = [rand_op("write", h, np.arange(3))]
        StreamMemory(mem).replay(ops)
        assert seen == [ops]
        assert mem.counters.to_dict()["writes"] == 3


class TestConcatRanges:
    def test_matches_python_loop(self):
        rng = np.random.default_rng(7)
        for _ in range(20):
            n = int(rng.integers(0, 8))
            starts = rng.integers(0, 100, n)
            counts = rng.integers(0, 10, n)
            expected = (np.concatenate(
                [np.arange(s, s + c) for s, c in zip(starts, counts)])
                if n and counts.sum() else np.empty(0, dtype=np.int64))
            assert np.array_equal(concat_ranges(starts, counts), expected)

    def test_empty(self):
        assert concat_ranges([], []).size == 0
