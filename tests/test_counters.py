"""Unit tests for the performance-counter substrate."""

import dataclasses

import pytest
from hypothesis import given, strategies as st

from repro.machine.counters import PerfCounters, format_count

_FIELDS = [f.name for f in dataclasses.fields(PerfCounters)]


class TestArithmetic:
    def test_default_is_zero(self):
        c = PerfCounters()
        assert all(v == 0 for v in c.to_dict().values())

    def test_add_is_fieldwise(self):
        a = PerfCounters(reads=3, atomics=1, faa=1)
        b = PerfCounters(reads=4, locks=2)
        s = a + b
        assert s.reads == 7 and s.atomics == 1 and s.locks == 2 and s.faa == 1

    def test_iadd_mutates(self):
        a = PerfCounters(writes=1)
        a += PerfCounters(writes=9, barriers=1)
        assert a.writes == 10 and a.barriers == 1

    def test_sub(self):
        a = PerfCounters(reads=10, l3_misses=5)
        b = PerfCounters(reads=4, l3_misses=5)
        d = a - b
        assert d.reads == 6 and d.l3_misses == 0

    def test_copy_is_independent(self):
        a = PerfCounters(reads=1)
        b = a.copy()
        b.reads = 99
        assert a.reads == 1

    def test_reset(self):
        a = PerfCounters(reads=5, cas=2, atomics=2)
        a.reset()
        assert all(v == 0 for v in a.to_dict().values())

    def test_total(self):
        parts = [PerfCounters(reads=i) for i in range(5)]
        assert PerfCounters.total(parts).reads == 10

    def test_total_empty(self):
        assert PerfCounters.total([]).reads == 0

    def test_scaled(self):
        a = PerfCounters(reads=10, writes=3)
        s = a.scaled(2.5)
        assert s.reads == 25 and s.writes == 8  # rounds 7.5 -> 8

    @given(st.lists(st.integers(0, 10**9), min_size=len(_FIELDS),
                    max_size=len(_FIELDS)),
           st.lists(st.integers(0, 10**9), min_size=len(_FIELDS),
                    max_size=len(_FIELDS)))
    def test_add_sub_roundtrip(self, xs, ys):
        a = PerfCounters(**dict(zip(_FIELDS, xs)))
        b = PerfCounters(**dict(zip(_FIELDS, ys)))
        assert ((a + b) - b).to_dict() == a.to_dict()

    @given(st.integers(0, 10**6), st.integers(0, 10**6))
    def test_total_matches_manual(self, x, y):
        assert PerfCounters.total(
            [PerfCounters(reads=x), PerfCounters(reads=y)]).reads == x + y


class TestFormatCount:
    @pytest.mark.parametrize("value,expected", [
        (0, "0"),
        (999, "999"),
        (1000, "1k"),
        (234_000_000, "234M"),
        (5_533_000, "5.53M"),
        (1_066_000_000, "1.07B"),
        (3_169_000_000_000, "3.17T"),
        (42_320, "42.3k"),
    ])
    def test_paper_style(self, value, expected):
        assert format_count(value) == expected

    def test_negative(self):
        assert format_count(-234_000_000) == "-234M"

    def test_small_float(self):
        assert format_count(0.5) == "0.5"

    @given(st.integers(0, 10**15))
    def test_never_raises_and_nonempty(self, v):
        out = format_count(v)
        assert isinstance(out, str) and out

    def test_formatted_dict(self):
        c = PerfCounters(reads=234_000_000)
        assert c.formatted()["reads"] == "234M"
