"""Tests for the static effect-inference pass (ANL1xx)."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.effect_report import render_text, report_to_json
from repro.analysis.effects import KERNELS, analyze_effects, effects_source

REPO = Path(__file__).parent.parent
GOLDEN = REPO / "EFFECTS.json"


@pytest.fixture(scope="module")
def report():
    return analyze_effects()


def _rules(rep):
    return [f.rule for f in rep.findings]


class TestCleanTree:
    def test_all_17_kernels_have_signatures(self, report):
        assert len(report.kernels) == len(KERNELS) == 17
        for name, keff in report.kernels.items():
            assert keff.phases, f"{name}: no phases inferred"
            assert keff.write_set, f"{name}: empty write set"

    def test_zero_false_direction_or_ownership_findings(self, report):
        errors = report.errors()
        assert errors == [], "\n".join(str(f) for f in errors)
        assert report.ok

    def test_dm_kernels_have_comm_footprints(self, report):
        for name in ("dm_pagerank", "dm_bfs", "dm_sssp_delta",
                     "dm_triangle_count"):
            comm = [p.comm for p in report.kernels[name].phases if p.comm]
            assert comm, f"{name}: no DM verb footprint inferred"

    def test_direction_taxonomy_on_pagerank(self, report):
        phases = {p.label: p for p in report.kernels["pagerank"].phases}
        assert phases["pr.pull"].inferred == "pull"
        assert phases["pr.push"].inferred == "push"
        # PA's local phase writes only the thread's own block
        assert phases["pr.pa-local"].inferred == "local"
        assert phases["pr.pa-local"].writes == ["pr.acc.block*"]

    def test_atomic_verdicts_on_pagerank(self, report):
        phases = {p.label: p for p in report.kernels["pagerank"].phases}
        push = phases["pr.push"].atomics[0]
        assert (push["verb"], push["verdict"]) == ("cas", "needed")
        remote = phases["pr.pa-remote"].atomics[0]
        assert remote["verdict"] == "batched"

    def test_golden_report_is_current(self, report):
        """EFFECTS.json must match a fresh inference; regenerate with
        ``python -m repro.analysis.effect_report -o EFFECTS.json``."""
        golden = json.loads(GOLDEN.read_text(encoding="utf-8"))
        assert report_to_json(report) == golden

    def test_text_rendering_covers_all_kernels(self, report):
        text = render_text(report)
        for name, _, _ in KERNELS:
            assert name in text


class TestSeededBugs:
    """Each seeded-bug kernel trips exactly its rule."""

    def test_anl101_pull_phase_writes_neighbor_state(self):
        src = """
def kernel(g, rt, mem, colors_h):
    def pull_body(t, vs):
        for v in vs:
            nbrs = g.neighbors(v)
            mem.cas(colors_h, idx=nbrs, mode="rand")
    rt.for_each_thread(pull_body)
"""
        assert _rules(effects_source(src)) == ["ANL101"]

    def test_anl101_direction_branch_classification(self):
        src = """
def kernel(g, rt, mem, h, direction):
    def body(t, vs):
        for v in vs:
            nbrs = g.neighbors(v)
            if direction == PULL:
                mem.cas(h, idx=nbrs, mode="rand")
    rt.for_each_thread(body)
"""
        assert _rules(effects_source(src)) == ["ANL101"]

    def test_anl102_unprotected_neighbor_store(self):
        src = """
def kernel(g, rt, mem, h):
    def body(t, vs):
        for v in vs:
            nbrs = g.neighbors(v)
            mem.write(h, idx=nbrs, mode="rand")
    rt.parallel_for(items, body, by_owner=True)
"""
        assert _rules(effects_source(src)) == ["ANL102"]

    def test_anl102_suppressed_by_covering_atomic(self):
        src = """
def kernel(g, rt, mem, h, aux_h):
    def body(t, vs):
        for v in vs:
            nbrs = g.neighbors(v)
            mem.lock(aux_h, idx=nbrs, mode="rand", covers=[(h, nbrs)])
            mem.write(h, idx=nbrs, mode="rand")
    rt.parallel_for(items, body, by_owner=True)
"""
        assert _rules(effects_source(src)) == []

    def test_anl102_suppressed_by_ownership_guard(self):
        src = """
def kernel(g, rt, mem, h, owner):
    def body(t, vs):
        for v in vs:
            nbrs = g.neighbors(v)
            for w in nbrs:
                if owner[w] == t:
                    mem.write(h, idx=w, mode="rand")
    rt.parallel_for(items, body, by_owner=True)
"""
        assert _rules(effects_source(src)) == []

    def test_anl102_sequential_phase_exempt(self):
        src = """
def kernel(g, rt, mem, h):
    def body():
        for v in range(g.n):
            nbrs = g.neighbors(v)
            mem.write(h, idx=nbrs, mode="rand")
    rt.sequential(body)
"""
        assert _rules(effects_source(src)) == []

    def test_anl103_own_indexed_atomic_is_relaxable(self):
        src = """
def kernel(rt, mem, h):
    def body(t, vs):
        for v in vs:
            mem.faa(h, idx=int(v), mode="rand")
    rt.parallel_for(items, body, by_owner=True)
"""
        rep = effects_source(src)
        assert _rules(rep) == ["ANL103"]
        assert "relaxable" in rep.findings[0].message

    def test_anl103_neighbor_atomic_stays_needed(self):
        src = """
def kernel(g, rt, mem, h):
    def body(t, vs):
        for v in vs:
            nbrs = g.neighbors(v)
            mem.faa(h, idx=nbrs, mode="rand")
    rt.parallel_for(items, body, by_owner=True)
"""
        rep = effects_source(src)
        assert _rules(rep) == []
        atomics = rep.kernels["kernel"].phases[0].atomics
        assert atomics[0]["verdict"] == "needed"

    def test_anl104_disjoint_adjacent_phases(self):
        src = """
def kernel(rt, mem, a_h, b_h):
    def phase_a(t, vs):
        mem.write(a_h, idx=vs, mode="rand")
    rt.for_each_thread(phase_a)
    def phase_b(t, vs):
        mem.read(b_h, idx=vs, mode="rand")
        mem.write(b_h, idx=vs, mode="rand")
    rt.for_each_thread(phase_b)
"""
        rep = effects_source(src)
        assert _rules(rep) == ["ANL104"]
        assert rep.allowlist and rep.allowlist[0]["after"] == "phase_a"

    def test_anl104_not_raised_on_overlapping_phases(self):
        src = """
def kernel(rt, mem, a_h):
    def phase_a(t, vs):
        mem.write(a_h, idx=vs, mode="rand")
    rt.for_each_thread(phase_a)
    def phase_b(t, vs):
        mem.read(a_h, idx=vs, mode="rand")
    rt.for_each_thread(phase_b)
"""
        rep = effects_source(src)
        assert _rules(rep) == []
        assert rep.allowlist == []

    def test_anl104_alias_hint_blocks_elision(self):
        src = """
def kernel(rt, mem, a_h, b_h):
    # effects: alias a.blocks* -> b.main
    def phase_a(t, vs):
        mem.write("a.blocks0", idx=vs, mode="rand")
    rt.for_each_thread(phase_a)
    def phase_b(t, vs):
        mem.read("b.main", idx=vs, mode="rand")
        mem.write("b.main", idx=vs, mode="rand")
    rt.for_each_thread(phase_b)
"""
        rep = effects_source(src)
        assert _rules(rep) == []

    def test_anl105_unregistered_window(self):
        src = """
def kernel(g, rt):
    def body(p):
        rt.accumulate(1, [1.0], window="w.acc", idx=[0], dtype="float")
    rt.superstep(body)
"""
        rep = effects_source(src)
        assert _rules(rep) == ["ANL105"]
        assert "register_window" in rep.findings[0].message

    def test_anl105_registered_window_is_clean(self):
        src = """
def kernel(g, rt, acc):
    rt.register_window("w.acc", acc)
    def body(p):
        rt.accumulate(1, [1.0], window="w.acc", idx=[0], dtype="float")
    rt.superstep(body)
"""
        assert _rules(effects_source(src)) == []

    def test_anl105_send_to_wrong_rank(self):
        src = """
def kernel(g, rt, owner, vals):
    def body(p):
        nbrs = g.neighbors(p)
        for q in range(4):
            sel = owner[nbrs] == q
            rt.send(p, vals[sel], nbytes=8, tag="x")
    rt.superstep(body)
"""
        rep = effects_source(src)
        assert _rules(rep) == ["ANL105"]
        assert "non-owner" in rep.findings[0].message

    def test_anl105_send_to_selected_rank_is_clean(self):
        src = """
def kernel(g, rt, owner, vals):
    def body(p):
        nbrs = g.neighbors(p)
        for q in range(4):
            sel = owner[nbrs] == q
            rt.send(q, vals[sel], nbytes=8, tag="x")
    rt.superstep(body)
"""
        assert _rules(effects_source(src)) == []

    def test_disjoint_writers_hint_suppresses_anl102(self):
        src = """
def kernel(g, rt, mem):
    # effects: disjoint-writers k.parent
    def body(t, vs):
        for v in vs:
            nbrs = g.neighbors(v)
            mem.write("k.parent", idx=nbrs, mode="rand")
    rt.parallel_for(items, body, by_owner=True)
"""
        assert _rules(effects_source(src)) == []


class TestHelperExpansion:
    def test_helper_memory_ops_join_the_phase_signature(self):
        src = """
def flush(mem, h, pairs):
    mem.write(h, idx=pairs, mode="rand")

def kernel(rt, mem, h):
    def body(p):
        flush(mem, h, [1, 2])
    rt.superstep(body)
"""
        rep = effects_source(src)
        phase = rep.kernels["kernel"].phases[0]
        assert "h" in phase.writes

    def test_message_derived_writes_are_not_flagged(self):
        # the dm_sssp apply pattern: a helper stores at indices unpacked
        # from message payloads -- unknown provenance, never ANL102
        src = """
def apply(mem, h, pairs):
    for tgt, val in pairs:
        mem.write(h, idx=int(tgt), mode="rand")

def kernel(rt, mem, h):
    def body(p):
        apply(mem, h, rt.inbox("relax"))
    rt.superstep(body)
"""
        assert _rules(effects_source(src)) == []


class TestReconciliation:
    def test_static_write_sets_cover_dynamic_traces(self, report):
        from repro.observability.footprint import reconcile_effects

        cells = reconcile_effects(report=report, n=64, iterations=2)
        assert len(cells) == 14
        bad = [c for c in cells if not c.ok]
        assert bad == [], "\n".join(
            f"{c.algorithm}/{c.variant} dm={c.dm}: traced {c.missing} "
            f"missing from static set {c.static}" for c in bad)

    def test_recorder_sees_through_covers(self):
        from repro.observability.driver import run_traced
        from repro.observability.footprint import FootprintRecorder

        rec = FootprintRecorder()
        run_traced("sssp", variant="push", n=64, iterations=2,
                   cache_scale=0, attach=rec.install)
        # the lock covers= declares the bucket-array store of the
        # (dist, bucket) critical section
        assert "sssp.bidx" in rec.written
        assert "sssp.dist" in rec.written


class TestCLI:
    def test_effects_clean_tree_exit_zero(self, capsys):
        from repro.__main__ import main
        assert main(["analyze", "--effects", "--no-reconcile"]) == 0
        out = capsys.readouterr().out
        assert "effects: 0 error(s)" in out

    def test_effects_json_document(self, capsys):
        from repro.__main__ import main
        assert main(["analyze", "--effects", "--no-reconcile",
                     "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro-analyze/1"
        assert doc["ok"] is True
        eff = doc["passes"]["effects"]
        assert eff["report"]["schema"] == "repro-effects/1"
        assert len(eff["report"]["kernels"]) == 17

    def test_lint_json_failure_exit_one(self, capsys):
        from repro.__main__ import main
        fixture = str(Path(__file__).parent / "fixtures"
                      / "bad_push_kernel.py")
        rc = main(["analyze", "--lint", "--format", "json", fixture])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert doc["ok"] is False
        assert any(f["rule"] == "ANL002"
                   for f in doc["passes"]["lint"]["findings"])
