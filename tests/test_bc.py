"""Correctness + instrumentation tests for Brandes betweenness centrality."""

import numpy as np
import pytest

import networkx as nx

from repro.algorithms.bc import betweenness_centrality
from repro.algorithms.reference import bc_reference
from repro.graph import from_edges, to_networkx
from tests.conftest import make_runtime

DIRECTIONS = ("push", "pull")


@pytest.mark.parametrize("direction", DIRECTIONS)
class TestCorrectness:
    def test_exact_matches_networkx(self, pa_graph, direction):
        rt = make_runtime(pa_graph, check_ownership=(direction == "pull"))
        r = betweenness_centrality(pa_graph, rt, direction=direction)
        nxbc = nx.betweenness_centrality(to_networkx(pa_graph),
                                         normalized=False)
        assert np.allclose(r.bc, [nxbc[i] for i in range(pa_graph.n)],
                           atol=1e-9)

    def test_path_graph_closed_form(self, direction):
        # path 0-1-2-3-4: bc(v) = (v)(n-1-v) pairs through v
        g = from_edges(5, [(i, i + 1) for i in range(4)])
        rt = make_runtime(g)
        r = betweenness_centrality(g, rt, direction=direction)
        assert np.allclose(r.bc, [0, 3, 4, 3, 0])

    def test_star_center_carries_all(self, direction):
        g = from_edges(6, [(0, i) for i in range(1, 6)])
        rt = make_runtime(g)
        r = betweenness_centrality(g, rt, direction=direction)
        assert r.bc[0] == pytest.approx(5 * 4 / 2)
        assert np.allclose(r.bc[1:], 0.0)

    def test_sampled_sources_match_reference(self, comm_graph, direction):
        sources = [1, 7, 42, 99]
        rt = make_runtime(comm_graph)
        r = betweenness_centrality(comm_graph, rt, direction=direction,
                                   sources=sources)
        ref = bc_reference(comm_graph, sources=sources)
        assert np.allclose(r.bc, ref, atol=1e-9)

    def test_integer_source_count_samples(self, comm_graph, direction):
        rt = make_runtime(comm_graph)
        r = betweenness_centrality(comm_graph, rt, direction=direction,
                                   sources=5, seed=1)
        assert r.n_sources == 5


class TestDirectionsAgree:
    def test_same_bc_both_directions(self, comm_graph):
        rts = [make_runtime(comm_graph) for _ in range(2)]
        a = betweenness_centrality(comm_graph, rts[0], direction="push",
                                   sources=[0, 5])
        b = betweenness_centrality(comm_graph, rts[1], direction="pull",
                                   sources=[0, 5])
        assert np.allclose(a.bc, b.bc, atol=1e-9)


class TestInstrumentation:
    def test_push_uses_float_locks(self, comm_graph):
        rt = make_runtime(comm_graph)
        r = betweenness_centrality(comm_graph, rt, direction="push",
                                   sources=4, seed=0)
        assert r.counters.locks > 0

    def test_pull_lock_free(self, comm_graph):
        """Section 4.9: pulling changes BC's conflicts from float locks to
        integer operations; our level-synchronized pull needs neither."""
        rt = make_runtime(comm_graph)
        r = betweenness_centrality(comm_graph, rt, direction="pull",
                                   sources=4, seed=0)
        assert r.counters.locks == 0

    def test_phase_times_partition_total(self, comm_graph):
        rt = make_runtime(comm_graph)
        r = betweenness_centrality(comm_graph, rt, direction="pull",
                                   sources=3, seed=0)
        assert 0 < r.forward_time < r.time
        assert 0 < r.backward_time < r.time
        assert r.forward_time + r.backward_time <= r.time

    def test_pull_beats_push(self, comm_graph):
        rts = [make_runtime(comm_graph) for _ in range(2)]
        push = betweenness_centrality(comm_graph, rts[0], direction="push",
                                      sources=4, seed=2)
        pull = betweenness_centrality(comm_graph, rts[1], direction="pull",
                                      sources=4, seed=2)
        assert pull.time < push.time


class TestEdgeCases:
    def test_disconnected(self, tiny_graph):
        for d in DIRECTIONS:
            rt = make_runtime(tiny_graph)
            r = betweenness_centrality(tiny_graph, rt, direction=d)
            nxbc = nx.betweenness_centrality(to_networkx(tiny_graph),
                                             normalized=False)
            assert np.allclose(r.bc, [nxbc[i] for i in range(6)], atol=1e-9)

    def test_invalid_direction(self, tiny_graph):
        rt = make_runtime(tiny_graph)
        with pytest.raises(ValueError):
            betweenness_centrality(tiny_graph, rt, direction="diagonal")
