"""Metamorphic tests: invariance laws the algorithms must satisfy.

Instead of comparing against an oracle, these tests transform the
*input* in a way with a known effect on the *output* and check the
relation holds -- permutation equivariance, weight scaling, edge
additions, and component composition.  They catch classes of bugs
(owner-dependence, weight-unit assumptions) that fixed-oracle tests
miss.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import (
    bfs, boruvka_mst, pagerank, sssp_delta, triangle_count,
)
from repro.algorithms.connected_components import connected_components
from repro.generators import erdos_renyi
from repro.graph import from_edges
from tests.conftest import make_runtime


def _perm_of(g, seed):
    rng = np.random.default_rng(seed)
    return rng.permutation(g.n).astype(np.int64)


def _apply_perm(g, perm, weighted=False):
    pairs = g.edges()
    new_edges = perm[pairs]
    weights = None
    if weighted:
        weights = np.array([g.weight_of(int(v), int(w)) for v, w in pairs])
    return from_edges(g.n, new_edges, weights, directed=g.directed)


class TestPermutationEquivariance:
    """f(relabel(G))[perm[v]] == f(G)[v] -- results must not depend on ids."""

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_pagerank(self, seed):
        g = erdos_renyi(60, d_bar=3.0, seed=seed)
        perm = _perm_of(g, seed + 1)
        g2 = _apply_perm(g, perm)
        r1 = pagerank(g, make_runtime(g), direction="pull", iterations=6)
        r2 = pagerank(g2, make_runtime(g2), direction="pull", iterations=6)
        assert np.allclose(r2.ranks[perm], r1.ranks, atol=1e-12)

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_triangles(self, seed):
        g = erdos_renyi(50, d_bar=4.0, seed=seed)
        perm = _perm_of(g, seed + 1)
        g2 = _apply_perm(g, perm)
        r1 = triangle_count(g, make_runtime(g), direction="pull")
        r2 = triangle_count(g2, make_runtime(g2), direction="pull")
        assert np.array_equal(r2.per_vertex[perm], r1.per_vertex)

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_bfs_levels(self, seed):
        g = erdos_renyi(60, d_bar=3.0, seed=seed)
        perm = _perm_of(g, seed + 1)
        g2 = _apply_perm(g, perm)
        r1 = bfs(g, make_runtime(g), 0, direction="push")
        r2 = bfs(g2, make_runtime(g2), int(perm[0]), direction="push")
        assert np.array_equal(r2.level[perm], r1.level)

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_components_partition_invariant(self, seed):
        g = erdos_renyi(60, d_bar=1.5, seed=seed)
        perm = _perm_of(g, seed + 1)
        g2 = _apply_perm(g, perm)
        r1 = connected_components(g, make_runtime(g), direction="push")
        r2 = connected_components(g2, make_runtime(g2), direction="push")
        # same partition structure: co-membership is preserved
        assert r1.n_components == r2.n_components
        for v in range(0, g.n, 7):
            for w in range(0, g.n, 11):
                same1 = r1.labels[v] == r1.labels[w]
                same2 = r2.labels[perm[v]] == r2.labels[perm[w]]
                assert same1 == same2


class TestWeightScaling:
    """Scaling all weights by c > 0 scales distances/MST by c and
    preserves structure."""

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 10**6), c=st.floats(0.25, 8.0))
    def test_sssp_scales(self, seed, c):
        g = erdos_renyi(50, d_bar=3.0, seed=seed, weighted=True)
        scaled = g.with_weights(g.weights * c)
        src = int(np.argmax(np.diff(g.offsets)))
        r1 = sssp_delta(g, make_runtime(g), src, direction="push")
        r2 = sssp_delta(scaled, make_runtime(scaled), src, direction="push")
        fin = np.isfinite(r1.dist)
        assert np.array_equal(np.isfinite(r2.dist), fin)
        assert np.allclose(r2.dist[fin], c * r1.dist[fin], rtol=1e-9)

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 10**6), c=st.floats(0.25, 8.0))
    def test_mst_scales(self, seed, c):
        g = erdos_renyi(40, d_bar=3.0, seed=seed, weighted=True)
        scaled = g.with_weights(g.weights * c)
        r1 = boruvka_mst(g, make_runtime(g), direction="pull")
        r2 = boruvka_mst(scaled, make_runtime(scaled), direction="pull")
        assert r2.total_weight == pytest.approx(c * r1.total_weight)
        assert r2.edges == r1.edges  # same tree, ties scale together


class TestMonotoneTransforms:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_adding_an_edge_never_increases_distances(self, seed):
        g = erdos_renyi(40, d_bar=2.0, seed=seed, weighted=True)
        src = 0
        r1 = sssp_delta(g, make_runtime(g), src, direction="push")
        rng = np.random.default_rng(seed + 9)
        u, v = int(rng.integers(g.n)), int(rng.integers(g.n))
        if u == v or g.has_edge(u, v):
            return
        pairs = np.r_[g.edges(), [[u, v]]]
        w = np.r_[[g.weight_of(int(a), int(b)) for a, b in g.edges()],
                  [float(rng.uniform(0.5, 5.0))]]
        g2 = from_edges(g.n, pairs, w)
        r2 = sssp_delta(g2, make_runtime(g2), src, direction="push")
        both = np.isfinite(r1.dist)
        assert np.all(r2.dist[both] <= r1.dist[both] + 1e-9)

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_adding_an_edge_never_disconnects(self, seed):
        g = erdos_renyi(40, d_bar=1.5, seed=seed)
        r1 = connected_components(g, make_runtime(g))
        rng = np.random.default_rng(seed + 3)
        u, v = int(rng.integers(g.n)), int(rng.integers(g.n))
        if u == v:
            return
        g2 = from_edges(g.n, np.r_[g.edges(), [[u, v]]])
        r2 = connected_components(g2, make_runtime(g2))
        assert r2.n_components <= r1.n_components


class TestDisjointComposition:
    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_triangles_compose_over_disjoint_union(self, seed):
        a = erdos_renyi(30, d_bar=4.0, seed=seed)
        b = erdos_renyi(25, d_bar=4.0, seed=seed + 1)
        union_edges = np.r_[a.edges(), b.edges() + a.n]
        u = from_edges(a.n + b.n, union_edges)
        ra = triangle_count(a, make_runtime(a), direction="pull")
        rb = triangle_count(b, make_runtime(b), direction="pull")
        ru = triangle_count(u, make_runtime(u), direction="pull")
        assert np.array_equal(ru.per_vertex[:a.n], ra.per_vertex)
        assert np.array_equal(ru.per_vertex[a.n:], rb.per_vertex)
