"""Unit tests for the simulated shared-memory runtime and scheduling."""

import numpy as np
import pytest

from repro.machine.cost_model import XC30
from repro.machine.memory import CountingMemory
from repro.runtime.frontier import ThreadLocalFrontiers
from repro.runtime.scheduler import assign, dynamic_chunks, static_chunks
from repro.runtime.sm import OwnershipViolation, SMRuntime

from tests.conftest import make_runtime


class TestScheduler:
    def test_static_contiguous(self):
        chunks = static_chunks(np.arange(10), 3)
        assert [list(c) for c in chunks] == [[0, 1, 2, 3], [4, 5, 6], [7, 8, 9]]

    def test_dynamic_round_robin(self):
        chunks = dynamic_chunks(np.arange(10), 2, chunk=2)
        assert list(chunks[0]) == [0, 1, 4, 5, 8, 9]
        assert list(chunks[1]) == [2, 3, 6, 7]

    def test_both_cover_exactly(self):
        items = np.arange(57)
        for schedule in ("static", "dynamic"):
            chunks = assign(items, 5, schedule, chunk=4)
            merged = np.sort(np.concatenate([c for c in chunks]))
            assert np.array_equal(merged, items)

    def test_invalid_schedule(self):
        with pytest.raises(ValueError):
            assign(np.arange(3), 2, "guided")

    def test_invalid_chunk(self):
        with pytest.raises(ValueError):
            dynamic_chunks(np.arange(3), 2, chunk=0)

    def test_empty_items(self):
        chunks = dynamic_chunks(np.empty(0, dtype=np.int64), 3)
        assert all(len(c) == 0 for c in chunks)


class TestSMRuntime:
    def test_for_each_thread_passes_owned_blocks(self, er_graph):
        rt = make_runtime(er_graph, P=4)
        seen = []

        def body(t, vs):
            seen.append((t, vs.copy()))

        rt.for_each_thread(body)
        assert [t for t, _ in seen] == [0, 1, 2, 3]
        allv = np.concatenate([vs for _, vs in seen])
        assert np.array_equal(np.sort(allv), np.arange(er_graph.n))

    def test_region_time_is_max_over_threads(self, er_graph):
        rt = make_runtime(er_graph, P=2)
        # a tiny array stays inside the scaled L1, so reads cost w_read only
        h = rt.mem.register("x", np.zeros(32))

        def body(t, vs):
            # thread 1 does 10x the reads of thread 0
            rt.mem.read(h, count=100 if t == 0 else 1000)

        before = rt.time
        rt.for_each_thread(body)
        span = rt.time - before
        expected = 1000 * rt.machine.w_read + rt.machine.w_barrier
        assert span == pytest.approx(expected)

    def test_barrier_counted_per_thread(self, er_graph):
        rt = make_runtime(er_graph, P=3)
        rt.barrier()
        assert all(c.barriers == 1 for c in rt.thread_counters)

    def test_parallel_for_by_owner(self, er_graph):
        rt = make_runtime(er_graph, P=4)
        routed = {}

        def body(t, vs):
            routed[t] = vs

        items = np.array([0, er_graph.n - 1])
        rt.parallel_for(items, body, by_owner=True)
        assert 0 in routed[0] and er_graph.n - 1 in routed[3]

    def test_sequential_charges_one_thread(self, er_graph):
        rt = make_runtime(er_graph, P=4)
        h = rt.mem.register("x", np.zeros(32))
        before = rt.time
        rt.sequential(lambda: rt.mem.read(h, count=50))
        assert rt.thread_counters[0].reads == 50
        assert rt.time - before == pytest.approx(
            50 * rt.machine.w_read + rt.machine.w_barrier)

    def test_ownership_violation_raised(self, er_graph):
        rt = make_runtime(er_graph, P=2, check_ownership=True)

        def body(t, vs):
            if t == 0:
                rt.owned_write_check(er_graph.n - 1)  # owned by thread 1

        with pytest.raises(OwnershipViolation):
            rt.for_each_thread(body)

    def test_ownership_check_disabled_by_default(self, er_graph):
        rt = make_runtime(er_graph, P=2)

        def body(t, vs):
            rt.owned_write_check(er_graph.n - 1)

        rt.for_each_thread(body)  # must not raise

    def test_reset(self, er_graph):
        rt = make_runtime(er_graph, P=2)
        rt.barrier()
        rt.reset()
        assert rt.time == 0.0
        assert rt.total_counters().barriers == 0

    def test_reset_rebinds_accounting_to_thread_0(self, er_graph):
        """Events issued after reset() must land on thread 0, not on
        whichever thread happened to execute last before the reset."""
        rt = make_runtime(er_graph, P=4)
        h = rt.mem.register("x", np.zeros(32))
        rt.for_each_thread(lambda t, vs: None)   # leaves thread 3 active
        rt.reset()
        assert rt._active_thread is None
        rt.mem.read(h, count=7)
        assert rt.thread_counters[0].reads == 7
        assert all(c.reads == 0 for c in rt.thread_counters[1:])

    def test_reset_rearms_tracer_sinks(self, er_graph, tmp_path):
        """reset() must reset attached sink state, not just the
        tracer's own baselines: the buffer clears, the rollup
        accumulators zero, and a streaming file truncates back to its
        header line (a reused runtime must not leak the previous run's
        events into any sink)."""
        from repro.observability.export import _dumps
        from repro.observability.sinks import (
            BufferSink, JsonlStreamSink, RollupSink,
        )
        from repro.observability.tracer import attach_tracer

        rt = make_runtime(er_graph, P=2)
        buf, roll = BufferSink(), RollupSink()
        stream = JsonlStreamSink(str(tmp_path / "events.jsonl"))
        tracer = attach_tracer(rt, sinks=[buf, roll, stream])
        rt.for_each_thread(lambda t, vs: None)
        rt.barrier()
        assert buf.events and roll.rollup()["steps"]
        rt.reset()
        assert buf.events == []
        assert roll.rollup()["steps"] == []
        assert sum(roll.traced_totals().to_dict().values()) == 0
        stream.close()
        assert (tmp_path / "events.jsonl").read_text() == \
            _dumps(tracer.meta()) + "\n"

    def test_ownership_violation_on_non_owned_pull_write(self, er_graph):
        """A pull kernel writing a remote vertex trips the Section-3.8
        assertion at the exact offending write."""
        rt = make_runtime(er_graph, P=4, check_ownership=True)
        x = np.zeros(er_graph.n)
        h = rt.mem.register("pull.x", x)

        def pull_body(t, vs):
            victim = (int(vs[-1]) + 1) % er_graph.n   # next block's vertex
            rt.owned_write_check(victim)
            x[victim] = 1.0
            rt.mem.write(h, idx=victim, mode="rand")

        with pytest.raises(OwnershipViolation, match="non-owned vertex"):
            rt.for_each_thread(pull_body)

    def test_shipped_pull_kernels_respect_ownership(self, er_graph):
        """The real pull variants run clean under check_ownership."""
        from repro.algorithms import boman_coloring, pagerank, triangle_count

        for algo in (lambda rt: pagerank(er_graph, rt, direction="pull",
                                         iterations=3),
                     lambda rt: triangle_count(er_graph, rt, direction="pull"),
                     lambda rt: boman_coloring(er_graph, rt,
                                               direction="pull")):
            algo(make_runtime(er_graph, P=4, check_ownership=True))

    def test_default_memory_model(self, er_graph):
        rt = SMRuntime(er_graph, P=2, machine=XC30)
        assert isinstance(rt.mem, CountingMemory)


class TestFrontiers:
    def test_merge_dedups_and_sorts(self):
        f = ThreadLocalFrontiers(2)
        f.extend(0, [5, 3])
        f.extend(1, [3, 1])
        assert list(f.merge()) == [1, 3, 5]

    def test_merge_without_dedup_sorts(self):
        f = ThreadLocalFrontiers(2)
        f.extend(0, [5, 3])
        f.extend(1, [1])
        assert list(f.merge(dedup=False)) == [1, 3, 5]

    def test_merge_clears(self):
        f = ThreadLocalFrontiers(1)
        f.add(0, 1)
        f.merge()
        assert list(f.merge()) == []

    def test_merge_counts_filter_cost(self):
        mem = CountingMemory()
        h = mem.register("f", 100, 8)
        f = ThreadLocalFrontiers(2)
        f.extend(0, [1, 2])
        f.extend(1, [3])
        f.merge(mem, handle=h)
        assert mem.counters.reads == 3 and mem.counters.writes == 3

    def test_sizes(self):
        f = ThreadLocalFrontiers(2)
        f.extend(0, [1, 2])
        assert f.sizes() == [2, 0]
