"""Tests for the Gather-Apply-Scatter layer (Section 7.4)."""

import numpy as np
import pytest

from repro.algorithms.reference import is_proper_coloring, sssp_reference
from repro.gas import (
    ColoringProgram, GASEngine, SSSPProgram, gas_coloring, gas_sssp,
)
from repro.gas.engine import VertexProgram


def _values_array(stats, n):
    return np.array([stats.values[v] for v in range(n)])


class TestSSSPProgram:
    @pytest.mark.parametrize("mode", ["push", "pull"])
    def test_distances_match_dijkstra(self, tiny_weighted, mode):
        st = gas_sssp(tiny_weighted, 0, mode=mode)
        ref = sssp_reference(tiny_weighted, 0)
        got = _values_array(st, tiny_weighted.n)
        fin = np.isfinite(ref)
        assert np.allclose(got[fin], ref[fin])
        assert np.all(np.isinf(got[~fin]))

    @pytest.mark.parametrize("mode", ["push", "pull"])
    def test_on_random_graph(self, er_weighted, mode):
        src = int(np.argmax(np.diff(er_weighted.offsets)))
        st = gas_sssp(er_weighted, src, mode=mode)
        ref = sssp_reference(er_weighted, src)
        got = _values_array(st, er_weighted.n)
        fin = np.isfinite(ref)
        assert np.allclose(got[fin], ref[fin])

    def test_push_counts_remote_writes(self, tiny_weighted):
        st = gas_sssp(tiny_weighted, 0, mode="push")
        assert st.remote_writes > 0

    def test_pull_does_not(self, tiny_weighted):
        st = gas_sssp(tiny_weighted, 0, mode="pull")
        assert st.remote_writes == 0
        assert st.gathers > 0


class TestColoringProgram:
    @pytest.mark.parametrize("mode", ["push", "pull"])
    def test_proper(self, comm_graph, mode):
        st = gas_coloring(comm_graph, mode=mode)
        colors = _values_array(st, comm_graph.n)
        assert is_proper_coloring(comm_graph, colors)

    @pytest.mark.parametrize("mode", ["push", "pull"])
    def test_sparse_graph(self, road_graph, mode):
        st = gas_coloring(road_graph, mode=mode)
        colors = _values_array(st, road_graph.n)
        assert is_proper_coloring(road_graph, colors)

    def test_terminates(self, pa_graph):
        st = gas_coloring(pa_graph, mode="pull")
        assert st.iterations < 4 * pa_graph.n + 16


class TestEngine:
    def test_invalid_mode(self, tiny_graph):
        engine = GASEngine(tiny_graph, SSSPProgram(0))
        with pytest.raises(ValueError):
            engine.run(mode="diagonal")

    def test_max_iterations_cap(self, comm_graph):
        engine = GASEngine(comm_graph, ColoringProgram())
        st = engine.run(mode="pull", max_iterations=1)
        assert st.iterations == 1

    def test_abstract_hooks_raise(self):
        prog = VertexProgram()
        for call in (lambda: prog.init_value(0),
                     lambda: prog.gather(0, 1, 1.0, None),
                     lambda: prog.sum(1, 2),
                     lambda: prog.identity(),
                     lambda: prog.apply(0, None, None)):
            with pytest.raises(NotImplementedError):
                call()

    def test_scatter_condition_default(self):
        prog = VertexProgram()
        assert prog.scatter_condition(0, 1, 2)
        assert not prog.scatter_condition(0, 1, 1)
