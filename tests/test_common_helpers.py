"""Property tests for the shared algorithm helpers in algorithms/common."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.common import (
    block_bounds, check_direction, gather_edge_positions, segment_counts,
    segment_sums,
)
from repro.generators import erdos_renyi
from tests.conftest import make_runtime


@st.composite
def csr_offsets(draw, max_rows=20, max_deg=8):
    degs = draw(st.lists(st.integers(0, max_deg), min_size=1,
                         max_size=max_rows))
    return np.r_[0, np.cumsum(degs)].astype(np.int64)


class TestGatherEdgePositions:
    @settings(max_examples=40, deadline=None)
    @given(csr_offsets(), st.data())
    def test_matches_naive_concatenate(self, offsets, data):
        n = len(offsets) - 1
        vs = data.draw(st.lists(st.integers(0, n - 1), max_size=n,
                                unique=True))
        vs = np.asarray(sorted(vs), dtype=np.int64)
        got = gather_edge_positions(offsets, vs)
        want = (np.concatenate([np.arange(offsets[v], offsets[v + 1])
                                for v in vs])
                if len(vs) else np.empty(0))
        assert np.array_equal(got, want)

    def test_empty_set(self):
        assert len(gather_edge_positions(np.array([0, 3]), np.array([]))) == 0

    def test_unsorted_input_order_preserved(self):
        offsets = np.array([0, 2, 5, 6], dtype=np.int64)
        got = gather_edge_positions(offsets, np.array([2, 0]))
        assert list(got) == [5, 0, 1]

    def test_on_real_graph(self):
        g = erdos_renyi(100, d_bar=4.0, seed=2)
        vs = np.array([3, 17, 50, 99], dtype=np.int64)
        pos = gather_edge_positions(g.offsets, vs)
        nbrs = g.adj[pos]
        want = np.concatenate([g.neighbors(v) for v in vs])
        assert np.array_equal(nbrs, want)


class TestSegmentReductions:
    @settings(max_examples=40, deadline=None)
    @given(csr_offsets())
    def test_segment_sums_matches_loop(self, offsets):
        rng = np.random.default_rng(0)
        vals = rng.random(int(offsets[-1]))
        starts, ends = offsets[:-1], offsets[1:]
        got = segment_sums(vals, starts, ends)
        want = np.array([vals[s:e].sum() for s, e in zip(starts, ends)])
        assert np.allclose(got, want)

    @settings(max_examples=40, deadline=None)
    @given(csr_offsets())
    def test_segment_counts_matches_loop(self, offsets):
        rng = np.random.default_rng(1)
        flags = rng.random(int(offsets[-1])) > 0.5
        starts, ends = offsets[:-1], offsets[1:]
        got = segment_counts(flags, starts, ends)
        want = np.array([int(flags[s:e].sum())
                         for s, e in zip(starts, ends)])
        assert np.array_equal(got, want)

    def test_empty_segments_are_zero(self):
        vals = np.array([1.0, 2.0])
        out = segment_sums(vals, np.array([0, 1, 1]), np.array([1, 1, 2]))
        assert list(out) == [1.0, 0.0, 2.0]

    def test_all_empty(self):
        out = segment_sums(np.empty(0), np.array([0, 0]), np.array([0, 0]))
        assert list(out) == [0.0, 0.0]


class TestMisc:
    def test_check_direction(self):
        assert check_direction("push") == "push"
        with pytest.raises(ValueError):
            check_direction("shove")
        assert check_direction("x", allowed=("x",)) == "x"

    def test_block_bounds(self):
        g = erdos_renyi(50, d_bar=3.0, seed=3)
        rt = make_runtime(g, P=2)
        vs = rt.part.owned(1)
        lo, hi = block_bounds(rt, vs, g)
        assert lo == g.offsets[vs[0]] and hi == g.offsets[vs[-1] + 1]
        assert block_bounds(rt, vs[:0], g) == (0, 0)
