"""Correctness + instrumentation tests for top-down/bottom-up BFS."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import networkx as nx

from repro.algorithms.bfs import bfs
from repro.algorithms.reference import bfs_reference
from repro.generators import erdos_renyi
from repro.graph import from_edges, to_networkx
from tests.conftest import make_runtime

DIRECTIONS = ("push", "pull")


@pytest.mark.parametrize("direction", DIRECTIONS)
class TestCorrectness:
    def test_levels_match_reference(self, comm_graph, direction):
        ref = bfs_reference(comm_graph, 0)
        rt = make_runtime(comm_graph, check_ownership=(direction == "pull"))
        r = bfs(comm_graph, rt, 0, direction=direction)
        assert np.array_equal(r.level, ref)

    def test_levels_match_networkx(self, pa_graph, direction):
        rt = make_runtime(pa_graph)
        r = bfs(pa_graph, rt, 3, direction=direction)
        nxl = nx.single_source_shortest_path_length(to_networkx(pa_graph), 3)
        for v in range(pa_graph.n):
            assert r.level[v] == nxl.get(v, -1)

    def test_parents_form_valid_tree(self, comm_graph, direction):
        rt = make_runtime(comm_graph)
        r = bfs(comm_graph, rt, 0, direction=direction)
        for v in range(comm_graph.n):
            if r.level[v] > 0:
                p = int(r.parent[v])
                assert comm_graph.has_edge(v, p)
                assert r.level[p] == r.level[v] - 1
        assert r.parent[0] == 0

    def test_unreachable_marked(self, tiny_graph, direction):
        rt = make_runtime(tiny_graph)
        r = bfs(tiny_graph, rt, 0, direction=direction)
        assert r.level[5] == -1 and r.parent[5] == -1

    def test_frontier_sizes_sum_to_reached(self, road_graph, direction):
        rt = make_runtime(road_graph)
        root = int(np.argmax(np.diff(road_graph.offsets)))
        r = bfs(road_graph, rt, root, direction=direction)
        assert sum(r.frontier_sizes) == int((r.level >= 0).sum())

    def test_root_validation(self, tiny_graph, direction):
        rt = make_runtime(tiny_graph)
        with pytest.raises(ValueError):
            bfs(tiny_graph, rt, 99, direction=direction)


class TestPushPullEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10**6))
    def test_same_levels_on_random_graphs(self, seed):
        g = erdos_renyi(80, d_bar=2.5, seed=seed)
        rts = [make_runtime(g) for _ in range(2)]
        a = bfs(g, rts[0], 0, direction="push")
        b = bfs(g, rts[1], 0, direction="pull")
        assert np.array_equal(a.level, b.level)


class TestInstrumentation:
    def test_push_cas_claims_each_vertex_once(self, comm_graph):
        rt = make_runtime(comm_graph)
        r = bfs(comm_graph, rt, 0, direction="push")
        reached = int((r.level > 0).sum())
        # every CAS in the deterministic superstep succeeds exactly once
        assert r.counters.cas == reached

    def test_pull_zero_atomics(self, comm_graph):
        rt = make_runtime(comm_graph)
        r = bfs(comm_graph, rt, 0, direction="pull")
        assert r.counters.atomics == 0

    def test_pull_reads_blow_up_on_high_diameter(self, road_graph):
        """Section 4.3: pull costs O(D·m) reads vs push's O(m)."""
        root = int(np.argmax(np.diff(road_graph.offsets)))
        rt = make_runtime(road_graph)
        push = bfs(road_graph, rt, root, direction="push")
        rt = make_runtime(road_graph)
        pull = bfs(road_graph, rt, root, direction="pull")
        assert pull.counters.reads > 5 * push.counters.reads

    def test_push_faster_on_road_network(self, road_graph):
        root = int(np.argmax(np.diff(road_graph.offsets)))
        rt = make_runtime(road_graph)
        push = bfs(road_graph, rt, root, direction="push")
        rt = make_runtime(road_graph)
        pull = bfs(road_graph, rt, root, direction="pull")
        assert push.time < pull.time

    def test_directions_recorded(self, comm_graph):
        rt = make_runtime(comm_graph)
        r = bfs(comm_graph, rt, 0, direction="push")
        assert r.directions == ["push"] * r.iterations


class TestEdgeCases:
    def test_single_vertex_component(self):
        g = from_edges(3, [(1, 2)])
        rt = make_runtime(g)
        r = bfs(g, rt, 0, direction="push")
        assert r.level[0] == 0 and r.level[1] == -1

    def test_star_graph_two_levels(self):
        g = from_edges(8, [(0, i) for i in range(1, 8)])
        for d in DIRECTIONS:
            rt = make_runtime(g)
            r = bfs(g, rt, 0, direction=d)
            assert np.array_equal(np.sort(r.level), [0] + [1] * 7)
