"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestInfo:
    def test_lists_machines_and_datasets(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "XC30" in out and "Trivium" in out
        assert "orc" in out and "rca" in out


class TestStats:
    def test_prints_table2_stats(self, capsys):
        assert main(["stats", "am", "--scale", "9"]) == 0
        out = capsys.readouterr().out
        assert "n " in out and "D " in out

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            main(["stats", "not-a-graph"])


class TestRun:
    @pytest.mark.parametrize("algo,needs_direction", [
        ("pagerank", True), ("bfs", True), ("sssp", True),
        ("triangles", True), ("coloring", True), ("mst", True),
        ("prim", True), ("components", True),
    ])
    def test_each_algorithm_runs(self, capsys, algo, needs_direction):
        rc = main(["run", algo, "am", "--scale", "8", "--threads", "4",
                   "--iterations", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "simulated time" in out and "events:" in out

    def test_bc_with_sampled_sources(self, capsys):
        assert main(["run", "bc", "am", "--scale", "8", "--iterations", "4",
                     "--threads", "4"]) == 0
        assert "sources" in capsys.readouterr().out

    def test_push_direction(self, capsys):
        assert main(["run", "pagerank", "am", "--scale", "8",
                     "--direction", "push", "--iterations", "2"]) == 0
        out = capsys.readouterr().out
        assert "[push]" in out

    def test_machine_selection(self, capsys):
        assert main(["run", "pagerank", "am", "--scale", "8",
                     "--machine", "Trivium", "--iterations", "2"]) == 0
        assert "Trivium" in capsys.readouterr().out

    def test_unknown_machine_errors(self, capsys):
        assert main(["run", "pagerank", "am", "--scale", "8",
                     "--machine", "Cray-1"]) == 2

    def test_invalid_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "sort", "am"])


class TestExperimentsForwarding:
    def test_forwards_to_run_all(self, capsys):
        assert main(["experiments", "--quick", "table2"]) == 0
        assert "Table 2" in capsys.readouterr().out


class TestAnalyzeFaults:
    def test_chaos_suite_runs_clean(self, capsys):
        rc = main(["analyze", "--faults", "--scale", "36", "-P", "4",
                   "--fault-seeds", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "chaos suite" in out
        assert "faults: 0 failing" in out
        assert "fault overhead" in out

    def test_faults_flag_skips_other_passes(self, capsys):
        assert main(["analyze", "--faults", "--scale", "36",
                     "--fault-seeds", "1"]) == 0
        out = capsys.readouterr().out
        assert "lint:" not in out and "epoch checker" not in out

    def test_road_dataset_accepted(self, capsys):
        rc = main(["analyze", "--dm", "--dataset", "road",
                   "--scale", "64"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "road n=64" in out and "dm: 0 failing" in out

    def test_comm_dataset_accepted(self, capsys):
        rc = main(["analyze", "--dm", "--dataset", "comm",
                   "--scale", "64"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "comm n=64" in out and "dm: 0 failing" in out
