"""Tests for the push-write contention analysis."""

import numpy as np

from repro.generators import load_dataset, road_network
from repro.graph import Partition1D, from_edges
from repro.machine.contention import (
    ContentionProfile, contention_profile, effective_atomic_cost,
    writer_counts,
)


class TestWriterCounts:
    def test_single_thread_all_one(self, comm_graph):
        counts = writer_counts(comm_graph, Partition1D(comm_graph.n, 1))
        deg = np.diff(comm_graph.offsets)
        assert np.all(counts[deg > 0] == 1)
        assert np.all(counts[deg == 0] == 0)

    def test_star_center_sees_many_writers(self):
        g = from_edges(16, [(0, i) for i in range(1, 16)])
        counts = writer_counts(g, Partition1D(16, 4))
        assert counts[0] == 4       # leaves span all owner blocks
        assert np.all(counts[1:] == 1)  # each leaf touched only by 0's owner

    def test_bounded_by_P_and_degree(self, comm_graph):
        part = Partition1D(comm_graph.n, 8)
        counts = writer_counts(comm_graph, part)
        deg = np.diff(comm_graph.offsets)
        assert np.all(counts <= np.minimum(8, np.maximum(deg, 1)))


class TestProfile:
    def test_community_graph_is_contended(self):
        g = load_dataset("orc", scale=10)
        prof = contention_profile(g, Partition1D(g.n, 16))
        assert prof.mean_writers > 8
        assert prof.contended_update_fraction > 0.9

    def test_road_network_is_mostly_private(self):
        # 8 rows per block: only the two boundary rows of each block see a
        # second writer
        g = road_network(32, 32, keep=1.0, seed=1, weighted=False)
        prof = contention_profile(g, Partition1D(g.n, 4))
        assert prof.private_fraction > 0.6
        assert prof.contended_update_fraction < 0.5

    def test_road_less_contended_than_community(self):
        road = road_network(32, 32, keep=1.0, seed=1, weighted=False)
        comm = load_dataset("orc", scale=10)
        road_prof = contention_profile(road, Partition1D(road.n, 8))
        comm_prof = contention_profile(comm, Partition1D(comm.n, 8))
        assert (road_prof.contended_update_fraction
                < comm_prof.contended_update_fraction / 2)

    def test_as_row_keys(self):
        g = road_network(8, 8, keep=1.0, seed=1, weighted=False)
        row = contention_profile(g, Partition1D(g.n, 2)).as_row()
        assert "mean writers" in row and "contended updates" in row

    def test_empty_graph(self):
        g = from_edges(4, [])
        prof = contention_profile(g, Partition1D(4, 2))
        assert prof.mean_writers == 0.0
        assert prof.private_fraction == 1.0


class TestEffectiveCost:
    def test_mixture_endpoints(self):
        hot = ContentionProfile(4, np.array([]), 4.0, 4, 1.0, 0.0)
        cold = ContentionProfile(4, np.array([]), 1.0, 1, 0.0, 1.0)
        assert effective_atomic_cost(hot, 25, 150) == 150
        assert effective_atomic_cost(cold, 25, 150) == 25

    def test_dense_graph_supports_contended_pricing(self):
        """On the orc stand-in the effective atomic cost is close to the
        fully-contended rate the machine models use."""
        g = load_dataset("orc", scale=10)
        prof = contention_profile(g, Partition1D(g.n, 16))
        eff = effective_atomic_cost(prof, 25.0, 150.0)
        assert eff > 0.9 * 150.0
