"""Unit tests for the instrumented-memory layer."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.machine.cache import CacheHierarchySpec, CacheLevelSpec, TLBSpec
from repro.machine.counters import PerfCounters
from repro.machine.memory import CacheSimMemory, CountingMemory, MemoryModel


def small_hier() -> CacheHierarchySpec:
    return CacheHierarchySpec(
        l1=CacheLevelSpec(1024, 2), l2=CacheLevelSpec(4096, 4),
        l3=CacheLevelSpec(16384, 4), tlb=TLBSpec(4, 4096))


class TestRegistration:
    def test_handles_are_stable(self):
        mem = CountingMemory()
        h1 = mem.register("x", np.zeros(10))
        h2 = mem.register("x", np.zeros(99))
        assert h1 is h2

    def test_page_aligned_and_disjoint(self):
        mem = CountingMemory()
        a = mem.register("a", np.zeros(1000))
        b = mem.register("b", np.zeros(1000))
        assert a.base % 4096 == 0 and b.base % 4096 == 0
        assert b.base >= a.base + a.nbytes

    def test_register_by_size(self):
        mem = CountingMemory()
        h = mem.register("s", 100, 4)
        assert h.size == 100 and h.itemsize == 4 and h.nbytes == 400

    def test_addr(self):
        mem = CountingMemory()
        h = mem.register("x", np.zeros(10))
        assert np.array_equal(h.addr([0, 2]), [h.base, h.base + 16])


class TestCountingMemory:
    def test_read_counts(self):
        mem = CountingMemory()
        h = mem.register("x", np.zeros(100))
        mem.read(h, idx=np.arange(7))
        mem.read(h, count=3)
        mem.read(h, idx=5)
        assert mem.counters.reads == 11

    def test_write_counts(self):
        mem = CountingMemory()
        h = mem.register("x", np.zeros(100))
        mem.write(h, count=4)
        assert mem.counters.writes == 4

    def test_faa_counts(self):
        mem = CountingMemory()
        h = mem.register("x", np.zeros(100))
        mem.faa(h, idx=np.arange(5))
        c = mem.counters
        assert c.atomics == 5 and c.faa == 5 and c.cas == 0
        assert c.reads == 5 and c.writes == 5

    def test_cas_failures_do_not_write(self):
        mem = CountingMemory()
        h = mem.register("x", np.zeros(100))
        mem.cas(h, count=10, successes=3)
        assert mem.counters.cas == 10 and mem.counters.writes == 3

    def test_batched_atomics_tracked(self):
        mem = CountingMemory()
        h = mem.register("x", np.zeros(100))
        mem.cas(h, count=4, batched=True)
        mem.faa(h, count=2, batched=True)
        mem.cas(h, count=1)
        assert mem.counters.atomics_batched == 6
        assert mem.counters.atomics == 7

    def test_lock_counts(self):
        mem = CountingMemory()
        h = mem.register("x", np.zeros(100))
        mem.lock(h, count=3)
        c = mem.counters
        assert c.locks == 3 and c.reads == 3 and c.writes == 3

    def test_branches_and_flops(self):
        mem = CountingMemory()
        mem.branch_cond(5)
        mem.branch_uncond(2)
        mem.flop(7)
        c = mem.counters
        assert (c.branches_cond, c.branches_uncond, c.flops) == (5, 2, 7)

    def test_cached_mode_never_misses(self):
        mem = CountingMemory(small_hier())
        h = mem.register("x", np.zeros(1_000_000))
        mem.read(h, count=1000, mode="cached")
        assert mem.counters.reads == 1000
        assert mem.counters.l1_misses == 0

    def test_seq_scan_of_small_array_stays_cached(self):
        mem = CountingMemory(small_hier())
        h = mem.register("x", np.zeros(64))  # 512B < L1
        mem.read(h, count=64, mode="seq")
        assert mem.counters.l1_misses == 0

    def test_seq_scan_of_big_array_misses_per_line(self):
        mem = CountingMemory(small_hier())
        h = mem.register("x", np.zeros(100_000))
        mem.read(h, count=8000, mode="seq")
        # 8 items per 64B line
        assert mem.counters.l1_misses == pytest.approx(1000, abs=2)

    def test_rand_miss_scales_with_array_size(self):
        mem = CountingMemory(small_hier())
        small = mem.register("s", np.zeros(100))
        big = mem.register("b", np.zeros(1_000_000))
        c_small = PerfCounters()
        mem.set_counters(c_small)
        mem.read(small, idx=np.arange(100), mode="rand")
        c_big = PerfCounters()
        mem.set_counters(c_big)
        mem.read(big, idx=np.arange(0, 1_000_000, 10_000), mode="rand")
        assert c_big.l3_misses > c_small.l3_misses

    def test_span_refinement(self):
        """Clustered random indices into a huge array behave like a small one."""
        mem = CountingMemory(small_hier())
        big = mem.register("b", np.zeros(1_000_000))
        clustered = PerfCounters()
        mem.set_counters(clustered)
        mem.read(big, idx=np.arange(50), mode="rand")  # span = 400B
        spread = PerfCounters()
        mem.set_counters(spread)
        mem.read(big, idx=np.arange(0, 1_000_000, 20_000), mode="rand")
        assert clustered.l1_misses == 0
        assert spread.l3_misses > 0

    def test_set_counters_switches_attribution(self):
        mem = CountingMemory()
        h = mem.register("x", np.zeros(10))
        c1, c2 = PerfCounters(), PerfCounters()
        mem.set_counters(c1)
        mem.read(h, count=3)
        mem.set_counters(c2)
        mem.read(h, count=5)
        assert c1.reads == 3 and c2.reads == 5

    @given(st.integers(1, 10_000))
    def test_counts_match_request(self, n):
        mem = CountingMemory()
        h = mem.register("x", 100_000, 8)
        mem.read(h, count=n)
        assert mem.counters.reads == n


class TestCacheSimMemory:
    def test_touch_feeds_simulator(self):
        mem = CacheSimMemory(small_hier(), n_threads=2)
        h = mem.register("x", np.zeros(100_000))
        mem.read(h, idx=np.arange(0, 100_000, 997), mode="rand")
        assert mem.counters.l1_misses > 0
        assert mem.counters.tlb_d_misses > 0

    def test_per_thread_private_l1(self):
        mem = CacheSimMemory(small_hier(), n_threads=2)
        h = mem.register("x", np.zeros(1000))
        c0, c1 = PerfCounters(), PerfCounters()
        mem.set_counters(c0)
        mem.set_thread(0)
        mem.read(h, idx=np.arange(8) * 8)   # 8 distinct lines
        mem.set_counters(c1)
        mem.set_thread(1)
        mem.read(h, idx=np.arange(8) * 8)   # same lines, other thread's L1
        assert c0.l1_misses > 0 and c1.l1_misses > 0

    def test_shared_l3(self):
        mem = CacheSimMemory(small_hier(), n_threads=2)
        h = mem.register("x", np.zeros(1000))
        mem.set_thread(0)
        mem.read(h, idx=np.arange(8) * 8)
        c1 = PerfCounters()
        mem.set_counters(c1)
        mem.set_thread(1)
        mem.read(h, idx=np.arange(8) * 8)
        # thread 1 misses its private L1/L2 but hits the shared L3
        assert c1.l3_misses == 0

    def test_positionless_scan_synthesized(self):
        mem = CacheSimMemory(small_hier())
        h = mem.register("x", np.zeros(10_000))
        mem.read(h, count=800, mode="seq")
        assert mem.counters.l1_misses == pytest.approx(100, abs=2)

    def test_start_count_descriptor(self):
        mem = CacheSimMemory(small_hier())
        h = mem.register("x", np.zeros(10_000))
        mem.read(h, start=4000, count=8)
        assert mem.counters.reads == 8
        assert mem.counters.l1_misses == 1


class TestAbstractBase:
    def test_touch_is_abstract(self):
        mem = MemoryModel()
        h = mem.register("x", 10, 8)
        with pytest.raises(NotImplementedError):
            mem.read(h, count=1)
