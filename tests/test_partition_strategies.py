"""Tests for the alternative 1D decompositions and the cut metric."""

import numpy as np
import pytest

from repro.algorithms.pagerank import pagerank
from repro.algorithms.reference import pagerank_reference
from repro.graph import PartitionAwareCSR
from repro.graph.partition_strategies import (
    BlockPartition, HashPartition, LocalityPartition, bfs_ordering, edge_cut,
)
from repro.generators import road_network
from repro.machine.cost_model import XC30
from repro.machine.memory import CountingMemory
from repro.runtime.sm import SMRuntime


@pytest.fixture
def grid():
    return road_network(16, 16, keep=1.0, seed=1, weighted=False)


class TestInterfaces:
    @pytest.mark.parametrize("cls", [HashPartition])
    def test_owned_covers_all(self, grid, cls):
        part = cls(grid.n, 4)
        allv = np.concatenate([part.owned(t) for t in range(4)])
        assert np.array_equal(np.sort(allv), np.arange(grid.n))

    def test_locality_covers_all(self, grid):
        part = LocalityPartition(grid, 4)
        allv = np.concatenate([part.owned(t) for t in range(4)])
        assert np.array_equal(np.sort(allv), np.arange(grid.n))

    def test_owner_consistent_with_owned(self, grid):
        for part in (HashPartition(grid.n, 4), LocalityPartition(grid, 4)):
            for t in range(4):
                assert np.all(part.owner(part.owned(t)) == t)

    def test_is_local_matches_owner(self, grid):
        part = HashPartition(grid.n, 4)
        v = np.arange(grid.n)
        owners = part.owner(v)
        for t in range(4):
            assert np.array_equal(part.is_local(t, v), owners == t)

    def test_group_by_owner(self, grid):
        part = HashPartition(grid.n, 4)
        groups = part.group_by_owner(np.arange(20))
        regrouped = np.sort(np.concatenate(groups))
        assert np.array_equal(regrouped, np.arange(20))

    def test_bad_perm_rejected(self):
        from repro.graph.partition_strategies import _RelabeledPartition
        with pytest.raises(ValueError):
            _RelabeledPartition(4, 2, np.array([0, 0, 1, 2]))

    def test_owned_slice_not_supported(self, grid):
        with pytest.raises(NotImplementedError):
            HashPartition(grid.n, 4).owned_slice(0)


class TestBFSOrdering:
    def test_is_permutation(self, grid):
        order = bfs_ordering(grid)
        assert np.array_equal(np.sort(order), np.arange(grid.n))

    def test_neighbors_land_nearby(self, grid):
        """BFS ordering keeps lattice neighbors within O(row) distance."""
        order = bfs_ordering(grid)
        pos = np.empty(grid.n, dtype=np.int64)
        pos[order] = np.arange(grid.n)
        src = np.repeat(np.arange(grid.n), np.diff(grid.offsets))
        gaps = np.abs(pos[src] - pos[grid.adj])
        assert np.median(gaps) < 40


class TestEdgeCut:
    def test_cut_ordering_on_scrambled_mesh(self, grid):
        """With scrambled vertex ids, blocks cut almost everything; the
        BFS-based locality partition recovers most of the structure."""
        from repro.graph import relabel_random
        scrambled = relabel_random(grid, seed=9)
        cut_block = edge_cut(scrambled, BlockPartition(scrambled.n, 8))
        cut_local = edge_cut(scrambled, LocalityPartition(scrambled, 8))
        assert cut_local < cut_block / 2

    def test_row_major_grid_blocks_already_good(self, grid):
        """On a row-major lattice the paper's plain blocks are near
        optimal -- hash ownership is the pathological case."""
        cut_block = edge_cut(grid, BlockPartition(grid.n, 8))
        cut_hash = edge_cut(grid, HashPartition(grid.n, 8))
        assert cut_block < cut_hash / 2

    def test_single_owner_zero_cut(self, grid):
        assert edge_cut(grid, BlockPartition(grid.n, 1)) == 0

    def test_cut_counts_both_directions(self):
        from repro.graph import from_edges
        g = from_edges(2, [(0, 1)])
        assert edge_cut(g, BlockPartition(2, 2)) == 2  # both entries


class TestAlgorithmsUnderAlternativePartitions:
    def test_pagerank_pa_correct_under_hash_partition(self, grid):
        """PA correctness must not depend on the decomposition."""
        ref = pagerank_reference(grid, 4)
        m = XC30.scaled(64)
        rt = SMRuntime(grid, P=4, machine=m, memory=CountingMemory(m.hierarchy))
        rt.part = HashPartition(grid.n, 4)
        pa = PartitionAwareCSR(grid, rt.part)
        r = pagerank(grid, rt, direction="push-pa", iterations=4, pa=pa)
        assert np.allclose(r.ranks, ref, atol=1e-12)

    def test_pa_atomics_track_the_cut(self, grid):
        """PA's atomics per iteration == the partition's edge cut."""
        m = XC30.scaled(64)
        counts = {}
        for name, part in (("hash", HashPartition(grid.n, 8)),
                           ("locality", LocalityPartition(grid, 8))):
            rt = SMRuntime(grid, P=8, machine=m,
                           memory=CountingMemory(m.hierarchy))
            rt.part = part
            pa = PartitionAwareCSR(grid, part)
            r = pagerank(grid, rt, direction="push-pa", iterations=1, pa=pa)
            counts[name] = r.counters.atomics
            assert r.counters.atomics == edge_cut(grid, part)
        assert counts["locality"] < counts["hash"]
