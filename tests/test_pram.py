"""Tests for the PRAM models, primitives, and Section-4 cost evaluators."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.pram import (
    ALGORITHM_COSTS, PRAM, PrimitiveCost, bc_cost, bfs_cost,
    boman_coloring_cost, boruvka_cost, k_bar, k_filter, k_relaxation,
    limit_processors, pagerank_cost, simulate_crcw_on_weaker,
    sssp_delta_cost, triangle_count_cost,
)


class TestModels:
    def test_concurrency_flags(self):
        assert not PRAM.EREW.allows_concurrent_reads
        assert PRAM.CREW.allows_concurrent_reads
        assert not PRAM.CREW.allows_concurrent_writes
        assert PRAM.CRCW_CB.allows_concurrent_writes

    def test_simulation_log_slowdown(self):
        assert simulate_crcw_on_weaker(10.0, 1024) == 10.0 * 10

    def test_simulation_identity_on_crcw(self):
        assert simulate_crcw_on_weaker(10.0, 1024, PRAM.CRCW_CB) == 10.0

    def test_simulation_single_processor(self):
        assert simulate_crcw_on_weaker(10.0, 1) == 10.0

    @given(st.floats(1, 1e6), st.integers(2, 1 << 16),
           st.integers(1, 1 << 16))
    def test_lp_lemma(self, S, P, P_prime):
        S_new = limit_processors(S, P, P_prime)
        if P_prime >= P:
            assert S_new == S
        else:
            assert S_new == math.ceil(S * P / P_prime)

    def test_lp_invalid(self):
        with pytest.raises(ValueError):
            limit_processors(1.0, 4, 0)


class TestPrimitives:
    def test_k_bar(self):
        assert k_bar(100, 10) == 10 and k_bar(5, 10) == 1

    def test_pull_relaxation(self):
        c = k_relaxation(1000, 10, "pull")
        assert c.time == 100 and c.work == 1000

    def test_push_crcw_same_as_pull(self):
        assert (k_relaxation(64, 4, "push", PRAM.CRCW_CB)
                == k_relaxation(64, 4, "pull", PRAM.CRCW_CB))

    def test_push_crew_log_factor(self):
        base = k_relaxation(64, 4, "push", PRAM.CRCW_CB, d_hat=256)
        crew = k_relaxation(64, 4, "push", PRAM.CREW, d_hat=256)
        assert crew.time == base.time * 8 and crew.work == base.work * 8

    def test_filter_cost(self):
        c = k_filter(1000, 8, n=100)
        assert c.time == pytest.approx(3 + 125)
        assert c.work == 100  # min(k, n)

    def test_invalid_direction(self):
        with pytest.raises(ValueError):
            k_relaxation(1, 1, "shake")

    def test_cost_arithmetic(self):
        a = PrimitiveCost(1, 2) + PrimitiveCost(3, 4)
        assert (a.time, a.work) == (4, 6)
        assert PrimitiveCost(1, 2).scaled(3) == PrimitiveCost(3, 6)


ARGS = dict(n=4096, m=65536, d_hat=256, P=64)


class TestAlgorithmCosts:
    def test_registry_covers_all(self):
        assert {"PR", "TC", "BFS", "SSSP-Δ", "BC",
                "BGC", "MST"} <= set(ALGORITHM_COSTS)

    def test_pr_pull_no_sync(self):
        c = pagerank_cost("pull", PRAM.CRCW_CB, **ARGS, L=10)
        assert c.atomics == 0 and c.locks == 0
        assert c.read_conflicts == 10 * ARGS["m"]

    def test_pr_push_locks(self):
        c = pagerank_cost("push", PRAM.CRCW_CB, **ARGS, L=10)
        assert c.locks == 10 * ARGS["m"] and c.write_conflicts == 10 * ARGS["m"]

    def test_pr_crew_log_penalty(self):
        crcw = pagerank_cost("push", PRAM.CRCW_CB, **ARGS)
        crew = pagerank_cost("push", PRAM.CREW, **ARGS)
        assert crew.time == pytest.approx(crcw.time * 8)
        # pulling pays no penalty on CREW
        assert (pagerank_cost("pull", PRAM.CREW, **ARGS).time
                == pagerank_cost("pull", PRAM.CRCW_CB, **ARGS).time)

    def test_tc_both_read_push_also_writes(self):
        pull = triangle_count_cost("pull", PRAM.CRCW_CB, **ARGS)
        push = triangle_count_cost("push", PRAM.CRCW_CB, **ARGS)
        assert pull.read_conflicts == push.read_conflicts
        assert pull.write_conflicts == 0 and push.write_conflicts > 0
        assert push.atomics == ARGS["m"] * ARGS["d_hat"]

    def test_bfs_work_asymmetry(self):
        pull = bfs_cost("pull", PRAM.CRCW_CB, **ARGS, D=8)
        push = bfs_cost("push", PRAM.CRCW_CB, **ARGS, D=8)
        assert pull.work == 8 * push.work
        assert push.atomics == ARGS["m"]  # O(m) CAS

    def test_sssp_push_cheaper(self):
        pull = sssp_delta_cost("pull", PRAM.CRCW_CB, **ARGS,
                               L_over_delta=10, l_delta=3)
        push = sssp_delta_cost("push", PRAM.CRCW_CB, **ARGS,
                               L_over_delta=10, l_delta=3)
        assert push.work < pull.work
        assert pull.locks == 0  # analytic claim of Section 4.9

    def test_bc_lock_vs_atomic_type_change(self):
        push = bc_cost("push", PRAM.CRCW_CB, **ARGS, D=8, sources=16)
        pull = bc_cost("pull", PRAM.CRCW_CB, **ARGS, D=8, sources=16)
        assert push.locks > 0 and push.atomics == 0
        assert pull.atomics > 0 and pull.locks == 0

    def test_bgc_symmetric_cas(self):
        push = boman_coloring_cost("push", PRAM.CRCW_CB, **ARGS, L=5)
        pull = boman_coloring_cost("pull", PRAM.CRCW_CB, **ARGS, L=5)
        assert push.atomics == pull.atomics == 5 * ARGS["m"]

    def test_mst_quadratic(self):
        c = boruvka_cost("pull", PRAM.CRCW_CB, **ARGS)
        assert c.work == ARGS["n"] ** 2
        assert c.time == ARGS["n"] ** 2 / ARGS["P"]

    def test_mst_crew_log_n_not_log_d(self):
        crcw = boruvka_cost("push", PRAM.CRCW_CB, **ARGS)
        crew = boruvka_cost("push", PRAM.CREW, **ARGS)
        assert crew.time == pytest.approx(crcw.time * math.log2(ARGS["n"]))

    @given(st.integers(1, 1 << 12))
    def test_time_monotone_decreasing_in_P(self, P):
        a = pagerank_cost("pull", PRAM.CRCW_CB, n=4096, m=65536,
                          d_hat=64, P=P)
        b = pagerank_cost("pull", PRAM.CRCW_CB, n=4096, m=65536,
                          d_hat=64, P=2 * P)
        assert b.time <= a.time
        assert b.work == a.work  # work is processor-independent

    def test_as_row_keys(self):
        row = pagerank_cost("pull", PRAM.CRCW_CB, **ARGS).as_row()
        assert {"algorithm", "dir", "model", "time", "work"} <= set(row)


class TestExtensionCosts:
    def test_prim_pull_read_heavy(self):
        from repro.pram import prim_cost
        pull = prim_cost("pull", PRAM.CRCW_CB, **ARGS)
        push = prim_cost("push", PRAM.CRCW_CB, **ARGS)
        assert pull.read_conflicts > 0 and pull.atomics == 0
        assert push.atomics == 2 * ARGS["m"]
        assert pull.work > push.work  # n² probes vs m relaxations

    def test_kruskal_sort_dominates(self):
        from repro.pram import kruskal_cost
        pull = kruskal_cost("pull", PRAM.CRCW_CB, **ARGS)
        push = kruskal_cost("push", PRAM.CRCW_CB, **ARGS)
        assert pull.atomics == 0 and push.atomics == ARGS["n"]
        assert pull.work >= ARGS["m"] * math.log2(ARGS["m"])

    def test_cc_mirrors_bfs_asymmetry(self):
        from repro.pram import connected_components_cost
        pull = connected_components_cost("pull", PRAM.CRCW_CB, **ARGS, D=8)
        push = connected_components_cost("push", PRAM.CRCW_CB, **ARGS, D=8)
        assert pull.work == 8 * push.work
        assert push.write_conflicts == ARGS["m"] and pull.write_conflicts == 0

    def test_registry_includes_extensions(self):
        assert {"Prim", "Kruskal", "CC"} <= set(ALGORITHM_COSTS)
