"""Tests for the linear-algebra layer (Section 7.1)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.reference import (
    bfs_reference, pagerank_reference, sssp_reference,
)
from repro.generators import erdos_renyi
from repro.graph import from_edges
from repro.la import (
    MIN_PLUS, OR_AND, PLUS_TIMES, adjacency_matrices, bellman_ford_la,
    bfs_la, pagerank_la, spmspv_csc, spmspv_csr, spmv_csc, spmv_csr,
)


class TestSemirings:
    def test_plus_times(self):
        assert PLUS_TIMES.add(2.0, 3.0) == 5.0
        assert PLUS_TIMES.mul(2.0, 3.0) == 6.0
        assert PLUS_TIMES.add_reduce(np.array([1.0, 2.0, 3.0])) == 6.0
        assert PLUS_TIMES.add_reduce(np.array([])) == PLUS_TIMES.zero

    def test_min_plus(self):
        assert MIN_PLUS.add(2.0, 3.0) == 2.0
        assert MIN_PLUS.mul(2.0, 3.0) == 5.0
        assert MIN_PLUS.add_reduce(np.array([])) == np.inf
        assert MIN_PLUS.is_zero(np.array([np.inf, 1.0])).tolist() == [True, False]

    def test_or_and(self):
        assert OR_AND.add(True, False)
        assert not OR_AND.mul(True, False)

    def test_repr(self):
        assert "min-plus" in repr(MIN_PLUS)


class TestMatrices:
    def test_undirected_shares_structure(self, tiny_graph):
        csr, csc = adjacency_matrices(tiny_graph)
        assert csr.nnz == csc.nnz == 2 * tiny_graph.m
        assert np.array_equal(csr.indices, csc.indices)

    def test_directed_csr_is_in_neighbors(self):
        g = from_edges(3, [(0, 1), (2, 1)], directed=True)
        csr, csc = adjacency_matrices(g)
        rows1, _ = csr.row(1)
        assert sorted(rows1.tolist()) == [0, 2]   # arcs INTO 1
        cols0, _ = csc.col(0)
        assert cols0.tolist() == [1]              # arcs OUT of 0


def _dense_spmv(g, x, sr):
    """Oracle: dense matrix-vector over the semiring."""
    y = np.full(g.n, sr.zero)
    for i in range(g.n):
        contribs = [sr.mul(1.0, x[int(j)]) for j in g.neighbors(i)]
        if contribs:
            acc = contribs[0]
            for c in contribs[1:]:
                acc = sr.add(acc, c)
            y[i] = acc
    return y


class TestSpMV:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_csr_csc_agree_with_dense(self, seed):
        g = erdos_renyi(40, d_bar=3.0, seed=seed)
        csr, csc = adjacency_matrices(g)
        rng = np.random.default_rng(seed)
        x = rng.random(g.n)
        want = _dense_spmv(g, x, PLUS_TIMES)
        y1, ops1 = spmv_csr(csr, x, PLUS_TIMES)
        y2, ops2 = spmv_csc(csc, x, PLUS_TIMES)
        assert np.allclose(y1, want) and np.allclose(y2, want)
        assert ops1.multiplies == ops2.multiplies == csr.nnz
        assert ops1.combines == 0 and ops2.combines == csc.nnz

    def test_min_plus_spmv(self, tiny_weighted):
        csr, _ = adjacency_matrices(tiny_weighted)
        x = np.full(tiny_weighted.n, np.inf)
        x[0] = 0.0
        y, _ = spmv_csr(csr, x, MIN_PLUS)
        assert y[1] == 1.0 and y[2] == 2.5 and y[3] == 5.0

    def test_spmspv_agree(self, comm_graph):
        csr, csc = adjacency_matrices(comm_graph)
        idx = np.array([0, 5, 9])
        val = np.ones(3)
        i1, v1, _ = spmspv_csr(csr, idx, val, OR_AND)
        i2, v2, _ = spmspv_csc(csc, idx, val, OR_AND)
        nz1 = set(i1[np.asarray(v1, dtype=bool)].tolist())
        nz2 = set(int(x) for x in i2.tolist())
        assert nz1 == nz2

    def test_spmspv_work_asymmetry(self, comm_graph):
        csr, csc = adjacency_matrices(comm_graph)
        idx = np.array([3])
        val = np.ones(1)
        _, _, ops_csr = spmspv_csr(csr, idx, val, OR_AND)
        _, _, ops_csc = spmspv_csc(csc, idx, val, OR_AND)
        assert ops_csc.rows_touched == 1
        assert ops_csr.rows_touched == comm_graph.n


class TestAlgebraicAlgorithms:
    @pytest.mark.parametrize("layout", ["csr", "csc"])
    def test_pagerank_la(self, comm_graph, layout):
        r, ops = pagerank_la(comm_graph, 5, layout=layout)
        assert np.allclose(r, pagerank_reference(comm_graph, 5), atol=1e-12)
        assert ops.multiplies == 5 * 2 * comm_graph.m

    @pytest.mark.parametrize("layout", ["csr", "csc"])
    def test_bfs_la(self, pa_graph, layout):
        level, _ = bfs_la(pa_graph, 0, layout=layout)
        assert np.array_equal(level, bfs_reference(pa_graph, 0))

    def test_bfs_la_csc_touches_fewer_columns(self, comm_graph):
        _, ops_csc = bfs_la(comm_graph, 0, layout="csc")
        _, ops_csr = bfs_la(comm_graph, 0, layout="csr")
        assert ops_csc.rows_touched < ops_csr.rows_touched

    @pytest.mark.parametrize("layout", ["csr", "csc"])
    def test_bellman_ford_la(self, tiny_weighted, layout):
        d, _ = bellman_ford_la(tiny_weighted, 0, layout=layout)
        ref = sssp_reference(tiny_weighted, 0)
        fin = np.isfinite(ref)
        assert np.allclose(d[fin], ref[fin])
        assert np.array_equal(np.isfinite(d), fin)

    def test_bellman_ford_converges_early(self, comm_graph):
        d, ops = bellman_ford_la(comm_graph, 0)
        # diameter is tiny: far fewer than n iterations of nnz multiplies
        assert ops.multiplies < 12 * 2 * comm_graph.m

    def test_invalid_layout(self, tiny_graph):
        with pytest.raises(ValueError):
            pagerank_la(tiny_graph, 1, layout="coo")
        with pytest.raises(ValueError):
            bfs_la(tiny_graph, 0, layout="coo")
        with pytest.raises(ValueError):
            bellman_ford_la(tiny_graph, 0, layout="coo")
