"""Correctness + instrumentation tests for push/pull Triangle Counting."""

import numpy as np
import pytest

import networkx as nx

from repro.algorithms.reference import triangle_per_vertex_reference
from repro.algorithms.triangle import triangle_count
from repro.graph import from_edges, to_networkx
from tests.conftest import make_runtime

DIRECTIONS = ("push", "pull", "push-pa")


@pytest.mark.parametrize("direction", DIRECTIONS)
class TestCorrectness:
    def test_tiny(self, tiny_graph, direction):
        # triangles: {0,1,2} and {0,2,3}
        rt = make_runtime(tiny_graph, check_ownership=(direction == "pull"))
        r = triangle_count(tiny_graph, rt, direction=direction)
        assert list(r.per_vertex) == [2, 1, 2, 1, 0, 0]
        assert r.total == 2

    def test_matches_networkx(self, comm_graph, direction):
        rt = make_runtime(comm_graph)
        r = triangle_count(comm_graph, rt, direction=direction)
        nxt = nx.triangles(to_networkx(comm_graph))
        assert np.array_equal(r.per_vertex,
                              [nxt[i] for i in range(comm_graph.n)])

    def test_triangle_free(self, direction):
        g = from_edges(6, [(i, i + 1) for i in range(5)])  # path
        rt = make_runtime(g)
        r = triangle_count(g, rt, direction=direction)
        assert r.total == 0 and np.all(r.per_vertex == 0)

    def test_complete_graph(self, direction):
        k = 6
        g = from_edges(k, [(i, j) for i in range(k) for j in range(i + 1, k)])
        rt = make_runtime(g)
        r = triangle_count(g, rt, direction=direction)
        expected_per_vertex = (k - 1) * (k - 2) // 2
        assert np.all(r.per_vertex == expected_per_vertex)
        assert r.total == k * (k - 1) * (k - 2) // 6


class TestReferenceOracle:
    def test_reference_matches_networkx(self, pa_graph):
        ref = triangle_per_vertex_reference(pa_graph)
        nxt = nx.triangles(to_networkx(pa_graph))
        assert np.array_equal(ref, [nxt[i] for i in range(pa_graph.n)])


class TestInstrumentation:
    def test_pull_zero_atomics(self, comm_graph):
        rt = make_runtime(comm_graph)
        r = triangle_count(comm_graph, rt, direction="pull")
        assert r.counters.atomics == 0

    def test_push_faa_equals_witness_count(self, comm_graph):
        rt = make_runtime(comm_graph)
        r = triangle_count(comm_graph, rt, direction="push")
        # every triangle corner is witnessed twice before halving
        assert r.counters.faa == 2 * int(
            triangle_per_vertex_reference(comm_graph).sum())
        assert r.counters.cas == 0

    def test_pa_issues_fewer_atomics(self, comm_graph):
        rt = make_runtime(comm_graph)
        push = triangle_count(comm_graph, rt, direction="push")
        rt = make_runtime(comm_graph)
        pa = triangle_count(comm_graph, rt, direction="push-pa")
        assert pa.counters.faa < push.counters.faa

    def test_scan_work_equal_across_directions(self, comm_graph):
        """Section 4.2: both variants scan the same O(m·d̂) data; only the
        write side differs.  Conditional branches count the scans."""
        rt = make_runtime(comm_graph)
        push = triangle_count(comm_graph, rt, direction="push")
        rt = make_runtime(comm_graph)
        pull = triangle_count(comm_graph, rt, direction="pull")
        assert push.counters.branches_cond == pull.counters.branches_cond

    def test_pull_slower_never(self, comm_graph):
        rt = make_runtime(comm_graph)
        push = triangle_count(comm_graph, rt, direction="push")
        rt = make_runtime(comm_graph)
        pull = triangle_count(comm_graph, rt, direction="pull")
        assert pull.time <= push.time


class TestValidation:
    def test_bad_direction(self, tiny_graph):
        rt = make_runtime(tiny_graph)
        with pytest.raises(ValueError):
            triangle_count(tiny_graph, rt, direction="both")

    def test_empty_graph(self):
        g = from_edges(3, [])
        rt = make_runtime(g)
        assert triangle_count(g, rt).total == 0
