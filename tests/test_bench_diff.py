"""Tests for the semantic perf-baseline differ (``repro bench diff``).

The differ replaces CI's byte-level ``cmp`` gate: identical documents
must diff clean (exit 0, empty report), seeded drift must be
attributed to the exact cell -> phase -> counter and gate the exit
code against the tolerance, and malformed or schema-mismatched input
must fail with a clear error (exit 2) rather than a traceback.
"""

from __future__ import annotations

import copy
import json
from pathlib import Path

import pytest

from repro.__main__ import main
from repro.observability.regress import (
    BENCHDIFF_SCHEMA, BenchDiffError, diff_bench, load_baseline,
)

ROOT = Path(__file__).parent.parent


@pytest.fixture(scope="module")
def baseline() -> dict:
    return load_baseline(str(ROOT / "BENCH_trace.json"))


def _perturb(doc: dict, pct: float, metric: str = "l1_misses") -> dict:
    """Grow one phase counter of one cell by ``pct`` percent."""
    mut = copy.deepcopy(doc)
    cell = next(c for c in mut["cells"]
                if (c["algorithm"], c["variant"], c["runtime"],
                    c.get("family", "baseline"))
                == ("pagerank", "pull", "sm", "baseline"))
    phase = cell["phases"][0]
    phase["counters"][metric] = round(
        phase["counters"][metric] * (1 + pct / 100.0))
    return mut


class TestDiffBench:
    def test_identical_documents_diff_clean(self, baseline):
        diff = diff_bench(baseline, copy.deepcopy(baseline))
        assert diff.ok and diff.drifts == []
        assert diff.cells_compared == 20
        assert "clean" in diff.summary()

    def test_drift_above_tolerance_is_attributed(self, baseline):
        diff = diff_bench(baseline, _perturb(baseline, 10.0),
                          tolerance_pct=5.0)
        assert not diff.ok
        [d] = diff.failing
        assert d.cell == "pagerank/pull/sm/baseline"
        assert d.scope == "phase" and d.phase == "pr.pull"
        assert d.metric == "l1_misses"
        assert d.direction == "regression"
        assert d.pct == pytest.approx(10.0, abs=0.1)

    def test_drift_below_tolerance_passes(self, baseline):
        diff = diff_bench(baseline, _perturb(baseline, 10.0),
                          tolerance_pct=20.0)
        assert diff.ok and diff.drifts and not diff.failing

    def test_improvement_also_gates(self, baseline):
        # a metric that shrank still means the committed baseline is
        # stale -- both directions fail the gate
        diff = diff_bench(baseline, _perturb(baseline, -10.0),
                          tolerance_pct=5.0)
        [d] = diff.failing
        assert d.direction == "improvement"

    def test_vanished_metric_is_always_out_of_tolerance(self, baseline):
        mut = copy.deepcopy(baseline)
        del mut["cells"][0]["counters"]["reads"]
        diff = diff_bench(baseline, mut, tolerance_pct=99.0)
        assert not diff.ok
        [d] = diff.failing
        assert d.metric == "reads" and d.candidate == 0

    def test_missing_cell_is_a_structure_drift(self, baseline):
        mut = copy.deepcopy(baseline)
        dropped = mut["cells"].pop()
        diff = diff_bench(baseline, mut, tolerance_pct=99.0)
        [d] = diff.failing
        assert d.scope == "structure"
        assert d.metric == "cell-missing-from-candidate"
        assert dropped["algorithm"] in d.cell

    def test_missing_phase_is_a_structure_drift(self, baseline):
        mut = copy.deepcopy(baseline)
        mut["cells"][0]["phases"] = mut["cells"][0]["phases"][1:]
        diff = diff_bench(baseline, mut, tolerance_pct=99.0)
        assert any(d.scope == "structure"
                   and d.metric == "phase-missing-from-candidate"
                   for d in diff.failing)

    def test_schema_mismatch_raises(self, baseline):
        mut = copy.deepcopy(baseline)
        mut["schema"] = "repro-bench/1"
        with pytest.raises(BenchDiffError, match="schema mismatch"):
            diff_bench(baseline, mut)

    def test_schema_mismatch_raises_both_ways(self, baseline):
        # an outdated *baseline* against a current candidate must fail
        # just as fast as the reverse -- the gate is direction-agnostic
        mut = copy.deepcopy(baseline)
        mut["schema"] = "repro-bench/2"
        with pytest.raises(BenchDiffError, match="schema mismatch"):
            diff_bench(mut, baseline)

    def test_config_mismatch_raises(self, baseline):
        mut = copy.deepcopy(baseline)
        mut["config"]["n"] = 128
        with pytest.raises(BenchDiffError, match="config mismatch"):
            diff_bench(baseline, mut)

    def test_verdict_document_shape(self, baseline):
        diff = diff_bench(baseline, _perturb(baseline, 10.0),
                          tolerance_pct=5.0)
        doc = diff.verdict()
        assert doc["schema"] == BENCHDIFF_SCHEMA
        assert doc["ok"] is False
        assert doc["summary"]["out_of_tolerance"] == 1
        assert doc["summary"]["regressions"] == 1
        assert doc["summary"]["cells_affected"] == [
            "pagerank/pull/sm/baseline"]
        json.dumps(doc)  # must be serializable as-is

    def test_markdown_report(self, baseline):
        diff = diff_bench(baseline, _perturb(baseline, 10.0),
                          tolerance_pct=5.0)
        md = diff.markdown()
        assert "| cell |" in md and "regression" in md
        assert "pagerank/pull/sm/baseline" in md and "l1_misses" in md
        clean = diff_bench(baseline, copy.deepcopy(baseline)).markdown()
        assert "clean" in clean and "|" not in clean


class TestLoadBaseline:
    def test_rejects_invalid_json(self, tmp_path):
        p = tmp_path / "junk.json"
        p.write_text("{not json")
        with pytest.raises(BenchDiffError, match="not valid JSON"):
            load_baseline(str(p))

    def test_rejects_missing_file(self, tmp_path):
        with pytest.raises(BenchDiffError, match="cannot read"):
            load_baseline(str(tmp_path / "absent.json"))

    def test_rejects_foreign_schema(self, tmp_path):
        p = tmp_path / "other.json"
        p.write_text(json.dumps({"schema": "repro-trace/1", "cells": []}))
        with pytest.raises(BenchDiffError, match="repro-bench"):
            load_baseline(str(p))

    def test_rejects_malformed_cells(self, tmp_path):
        p = tmp_path / "cells.json"
        p.write_text(json.dumps({"schema": "repro-bench/2",
                                 "cells": [{"algorithm": "pagerank"}]}))
        with pytest.raises(BenchDiffError, match="lacks"):
            load_baseline(str(p))


class TestDiffCli:
    def _write(self, tmp_path, name, doc):
        p = tmp_path / name
        p.write_text(json.dumps(doc))
        return str(p)

    def test_identical_exits_zero(self, capsys, baseline, tmp_path):
        cand = self._write(tmp_path, "cand.json", baseline)
        rc = main(["bench", "diff", str(ROOT / "BENCH_trace.json"), cand])
        assert rc == 0
        assert "clean" in capsys.readouterr().out

    def test_perf_rollup_diffs_too(self, capsys, tmp_path):
        committed = str(ROOT / "BENCH_perf.json")
        assert main(["bench", "diff", committed, committed]) == 0
        assert "clean" in capsys.readouterr().out

    def test_drift_exits_one_with_attribution(self, capsys, baseline,
                                              tmp_path):
        cand = self._write(tmp_path, "mut.json", _perturb(baseline, 10.0))
        rc = main(["bench", "diff", str(ROOT / "BENCH_trace.json"), cand,
                   "--tolerance-pct", "5"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "pagerank/pull/sm/baseline :: pr.pull :: l1_misses" in out

    def test_report_and_markdown_flags(self, capsys, baseline, tmp_path):
        cand = self._write(tmp_path, "mut.json", _perturb(baseline, 10.0))
        report = tmp_path / "verdict.json"
        rc = main(["bench", "diff", str(ROOT / "BENCH_trace.json"), cand,
                   "--tolerance-pct", "5", "--markdown",
                   "--report", str(report)])
        assert rc == 1
        assert "## Perf baseline diff" in capsys.readouterr().out
        doc = json.loads(report.read_text())
        assert doc["schema"] == BENCHDIFF_SCHEMA and not doc["ok"]

    def test_malformed_input_exits_two(self, capsys, tmp_path):
        junk = tmp_path / "junk.json"
        junk.write_text("{not json")
        rc = main(["bench", "diff", str(ROOT / "BENCH_trace.json"),
                   str(junk)])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_schema_mismatch_exits_two(self, capsys, baseline, tmp_path):
        mut = copy.deepcopy(baseline)
        mut["schema"] = "repro-bench/1"
        cand = self._write(tmp_path, "old.json", mut)
        rc = main(["bench", "diff", str(ROOT / "BENCH_trace.json"), cand])
        assert rc == 2
        assert "schema mismatch" in capsys.readouterr().err

    def test_schema_mismatch_exits_two_as_baseline(self, capsys, baseline,
                                                   tmp_path):
        mut = copy.deepcopy(baseline)
        mut["schema"] = "repro-bench/2"
        old = self._write(tmp_path, "old.json", mut)
        rc = main(["bench", "diff", old, str(ROOT / "BENCH_trace.json")])
        assert rc == 2
        assert "schema mismatch" in capsys.readouterr().err
