"""Shared fixtures: small deterministic graphs and runtimes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.race import attach_race_detector
from repro.generators import (
    community_graph, erdos_renyi, purchase_graph, rmat, road_network,
)
from repro.graph import CSRGraph, from_edges
from repro.machine.cost_model import XC30
from repro.machine.memory import CountingMemory
from repro.runtime.sm import SMRuntime


@pytest.fixture
def tiny_graph() -> CSRGraph:
    """A hand-built 6-vertex graph with known structure.

    Edges: a 4-cycle 0-1-2-3, a chord 0-2 (two triangles), a pendant 4
    attached to 3, and an isolated vertex 5.
    """
    edges = [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (3, 4)]
    return from_edges(6, edges)


@pytest.fixture
def tiny_weighted() -> CSRGraph:
    edges = [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (3, 4)]
    weights = [1.0, 2.0, 1.0, 5.0, 2.5, 0.5]
    return from_edges(6, edges, weights)


@pytest.fixture
def er_graph() -> CSRGraph:
    return erdos_renyi(200, d_bar=4.0, seed=7)


@pytest.fixture
def er_weighted() -> CSRGraph:
    return erdos_renyi(150, d_bar=4.0, seed=11, weighted=True)


@pytest.fixture
def comm_graph() -> CSRGraph:
    return community_graph(256, d_bar=10.0, seed=3)


@pytest.fixture
def road_graph() -> CSRGraph:
    return road_network(16, 16, seed=5, weighted=True)


@pytest.fixture
def pa_graph() -> CSRGraph:
    return purchase_graph(200, seed=9)


@pytest.fixture
def rmat_graph() -> CSRGraph:
    return rmat(8, d_bar=6.0, seed=13)


def make_runtime(g: CSRGraph, P: int = 4, check_ownership: bool = False,
                 machine=XC30) -> SMRuntime:
    m = machine.scaled(64)
    return SMRuntime(g, P=P, machine=m, memory=CountingMemory(m.hierarchy),
                     check_ownership=check_ownership)


@pytest.fixture
def rt_factory():
    return make_runtime


@pytest.fixture
def race_rt_factory():
    """Like ``rt_factory`` but with the race detector attached.

    Any test can opt into race checking by building its runtimes
    through this factory; at teardown every runtime's race report must
    be clean or the test fails.
    """
    detectors = []

    def factory(g: CSRGraph, P: int = 4, check_ownership: bool = False,
                machine=XC30, **detector_kw) -> SMRuntime:
        rt = make_runtime(g, P=P, check_ownership=check_ownership,
                          machine=machine)
        detectors.append(attach_race_detector(rt, **detector_kw))
        return rt

    yield factory
    for det in detectors:
        report = det.report()
        assert report.clean, report.summary()


def assert_levels_match(level: np.ndarray, ref: np.ndarray) -> None:
    assert np.array_equal(level, ref), (
        f"levels differ at {np.flatnonzero(level != ref)[:10]}")
