"""Differential certification of the batched stream engine.

The contract of :mod:`repro.streams` is *byte identity*: running a
kernel through the batched engine must produce exactly the counters,
phase rollup, simulated time, and result arrays of the interpreted
per-element kernel -- not approximately, not within tolerance.  These
tests run every ported kernel on every generator family in both
directions and compare the two engines field by field, under both the
flat counting memory (the analytic path) and the trace-driven cache
simulator (the merged ``access_batch`` path).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.observability.driver import TRACE_ALGORITHMS, run_traced
from repro.observability.export import metrics_rollup

ALGORITHMS = list(TRACE_ALGORITHMS)
DATASETS = ("er", "rmat", "road", "comm")
VARIANTS = ("push", "pull")


def _result_arrays(algorithm: str, result) -> list[np.ndarray]:
    """The output arrays a kernel is judged on (not timing metadata)."""
    return {
        "pagerank": lambda r: [r.ranks],
        "bfs": lambda r: [r.parent, r.level],
        "sssp": lambda r: [r.dist],
        "cc": lambda r: [r.labels],
    }[algorithm](result)


def _run(algorithm: str, variant: str, dataset: str, engine: str,
         cache_scale: int = 0):
    rt, tracer, _resolved, result = run_traced(
        algorithm, variant=variant, dataset=dataset, n=96, iterations=5,
        cache_scale=cache_scale, engine=engine)
    return rt, tracer, result


def _fingerprint(rt, tracer) -> dict:
    """Everything observable about a traced run, JSON-normalized."""
    traced, actual = tracer.reconcile()
    roll = metrics_rollup(tracer)
    return {
        "time": rt.time,
        "traced": traced.to_dict(),
        "actual": actual.to_dict(),
        "totals": roll["totals"],
        "phases": roll["phases"],
    }


class TestCounterIdentity:
    """Flat counting memory: the analytic fast path must land on the
    per-call interpreter's counters bit for bit."""

    @pytest.mark.parametrize("dataset", DATASETS)
    @pytest.mark.parametrize("variant", VARIANTS)
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_batched_matches_interpreted(self, algorithm, variant, dataset):
        rt_i, tr_i, res_i = _run(algorithm, variant, dataset, "interpreted")
        rt_b, tr_b, res_b = _run(algorithm, variant, dataset, "batched")
        fp_i, fp_b = _fingerprint(rt_i, tr_i), _fingerprint(rt_b, tr_b)
        assert fp_i["traced"] == fp_i["actual"], "interpreted reconcile"
        assert fp_b["traced"] == fp_b["actual"], "batched reconcile"
        # canonical JSON so a failure shows *which* field drifted
        assert json.dumps(fp_b, sort_keys=True) == \
            json.dumps(fp_i, sort_keys=True)
        for a_i, a_b in zip(_result_arrays(algorithm, res_i),
                            _result_arrays(algorithm, res_b)):
            assert np.array_equal(a_i, a_b)


class TestCacheSimIdentity:
    """Trace-driven cache simulator: the merged ``access_batch`` path
    must see exactly the address stream of the per-call interpreter."""

    @pytest.mark.parametrize("variant", VARIANTS)
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_simulated_misses_identical(self, algorithm, variant):
        rt_i, tr_i, _ = _run(algorithm, variant, "er", "interpreted",
                             cache_scale=64)
        rt_b, tr_b, _ = _run(algorithm, variant, "er", "batched",
                             cache_scale=64)
        fp_i, fp_b = _fingerprint(rt_i, tr_i), _fingerprint(rt_b, tr_b)
        assert fp_b["traced"] == fp_b["actual"], "batched reconcile"
        assert json.dumps(fp_b, sort_keys=True) == \
            json.dumps(fp_i, sort_keys=True)
        # the cache-sim columns must actually be exercised, or this
        # test certifies nothing
        assert fp_b["totals"]["l1_misses"] > 0


class TestEventTaxonomy:
    """The tracer's event stream -- not just the totals -- must keep the
    same taxonomy: same kinds, same per-kind counts, same phase labels
    in the same order."""

    @pytest.mark.parametrize("variant", VARIANTS)
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_event_kinds_and_phases(self, algorithm, variant):
        _, tr_i, _ = _run(algorithm, variant, "er", "interpreted")
        _, tr_b, _ = _run(algorithm, variant, "er", "batched")

        def taxonomy(tracer):
            kinds: dict[str, int] = {}
            for ev in tracer.events:
                kinds[ev.kind] = kinds.get(ev.kind, 0) + 1
            phases = [p["label"] for p in metrics_rollup(tracer)["phases"]]
            return kinds, phases

        assert taxonomy(tr_b) == taxonomy(tr_i)


class TestEffectsReconciliation:
    """The static write-effect golden must cover the batched kernels'
    dynamic footprints too (FootprintRecorder's stream-replay hook)."""

    def test_batched_footprints_covered(self):
        from repro.observability.footprint import reconcile_effects

        cells = reconcile_effects(n=64, iterations=2, engine="batched")
        assert len(cells) == 14
        bad = [c for c in cells if not c.ok]
        assert bad == [], "\n".join(
            f"{c.algorithm}/{c.variant} dm={c.dm}: traced {c.missing} "
            f"missing from static set {c.static}" for c in bad)


class TestEngineValidation:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            run_traced("pagerank", engine="vectorised")

    def test_unported_variant_rejected(self):
        with pytest.raises(ValueError, match="no batched kernel"):
            run_traced("bfs", variant="switching", engine="batched")

    def test_dm_is_a_passthrough(self):
        # DM kernels already batch their communication per superstep;
        # the batched engine runs them unchanged rather than erroring
        rt, tracer, _, _ = run_traced("pagerank", dm=True, engine="batched",
                                      cache_scale=0)
        traced, actual = tracer.reconcile()
        assert traced.to_dict() == actual.to_dict()
