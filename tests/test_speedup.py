"""Tests for the comparative analysis layer (``repro bench speedup``).

PR 9's acceptance surface: joining the committed ``repro-bench/3``
cells across the variant / runtime / engine / family axes must emit a
deterministic ``repro-speedup/1`` winner-by-factor document covering
every committed cell on ``push:pull``, report holes (a side with no
cell) instead of crashing, attribute each gap to weighted counter
deltas, and fail fast on schema-version mismatches -- in both
directions -- with exit code 2.
"""

from __future__ import annotations

import copy
import json
from pathlib import Path

import pytest

from repro.__main__ import main
from repro.observability.regress import BenchDiffError
from repro.observability.speedup import (
    SPEEDUP_SCHEMA, build_speedup, markdown, speedup_cells, summary,
)

ROOT = Path(__file__).parent.parent
TRACE = str(ROOT / "BENCH_trace.json")


@pytest.fixture(scope="module")
def doc() -> dict:
    return build_speedup(TRACE, pairs="push:pull")


class TestPushPull:
    def test_covers_every_committed_cell(self, doc):
        # the acceptance bar: push:pull alone joins all 20 cells into
        # 10 rows (every cell has exactly one partner across the axis)
        assert doc["schema"] == SPEEDUP_SCHEMA
        assert len(doc["rows"]) == 10
        assert doc["holes"] == []
        assert doc["cells_covered"] == doc["cells_total"] == 20

    def test_deterministic(self, doc):
        again = build_speedup(TRACE, pairs="push:pull")
        assert json.dumps(doc, sort_keys=True) == \
            json.dumps(again, sort_keys=True)

    def test_winner_is_the_faster_side(self, doc):
        for r in doc["rows"]:
            lt, rt = r["left"]["time_mtu"], r["right"]["time_mtu"]
            assert r["factor"] >= 1.0
            assert r["factor"] == pytest.approx(max(lt, rt) / min(lt, rt))
            faster = r["left"] if lt <= rt else r["right"]
            assert r["winner"] == faster["token"]

    def test_attribution_is_weighted_and_ranked(self, doc):
        for r in doc["rows"]:
            att = r["attribution"]
            assert att["unit"] == "mtu"  # machine known -> time-weighted
            assert att["leaders"]
            mags = [abs(ld["delta"]) for ld in att["leaders"]]
            assert mags == sorted(mags, reverse=True)

    def test_rows_carry_critical_decomposition(self, doc):
        for r in doc["rows"]:
            for side in (r["left"], r["right"]):
                assert {"compute", "comm", "sync"} <= set(side["critical"])

    def test_paper_shape_pagerank_pull_wins_sm(self, doc):
        # Section 6.1: PR push serializes on atomic rank accumulation;
        # pull is the SM winner at every scale
        rows = {r["key"]: r for r in doc["rows"]}
        assert rows["pagerank/*/sm/baseline"]["winner"] == "pull"
        assert rows["pagerank/*/sm/large"]["winner"] == "pull"
        lead = rows["pagerank/*/sm/baseline"]["attribution"]["leaders"][0]
        assert lead["counter"] == "cas" and lead["delta"] > 0

    def test_paper_shape_sssp_push_wins(self, doc):
        # Section 6.3: delta-stepping pull scans locks every vertex;
        # push relaxes only the active bucket
        rows = {r["key"]: r for r in doc["rows"]}
        assert rows["sssp/*/sm/baseline"]["winner"] == "push"
        assert rows["sssp/*/sm/large"]["winner"] == "push"


class TestAxes:
    def test_runtime_axis_sm_vs_dm(self):
        doc = build_speedup(TRACE, pairs="sm:dm")
        assert len(doc["rows"]) == 6  # 3 algorithms x 2 variants
        # the large family has no DM cells: 8 holes, not a crash
        assert all(h["missing_token"] == "dm" for h in doc["holes"])
        assert len(doc["holes"]) == 8
        for r in doc["rows"]:
            assert r["axis"] == "runtime" and r["winner"] == "sm"

    def test_family_axis_baseline_vs_large(self):
        doc = build_speedup(TRACE, pairs="baseline:large")
        assert len(doc["rows"]) == 6
        assert all(r["winner"] == "baseline" for r in doc["rows"])

    def test_resolved_axis_prefix_matches(self):
        # "rma" is no variant token: the resolved axis prefix-matches
        # rma-push / rma-pull; "mp" has no committed cells -> a hole
        doc = build_speedup(TRACE, pairs="mp:rma")
        assert doc["rows"] == []
        [hole] = doc["holes"]
        assert hole["missing_token"] == "mp"
        assert hole["present_cells"] == 2  # both rma variants matched

    def test_multiple_pairs_one_document(self):
        doc = build_speedup(TRACE, pairs="push:pull,sm:dm")
        assert doc["pairs"] == ["push:pull", "sm:dm"]
        assert len(doc["rows"]) == 16

    def test_bad_pair_spec_raises(self):
        for spec in ("push", "push:push", "a:b:c", ""):
            with pytest.raises(BenchDiffError):
                build_speedup(TRACE, pairs=spec)


class TestHoles:
    def test_one_side_missing_reports_hole(self):
        cells = [{"algorithm": "pagerank", "variant": "push",
                  "runtime": "sm", "family": "baseline",
                  "time_mtu": 10.0, "counters": {"reads": 5}}]
        core = speedup_cells(cells, "push:pull")
        assert core["rows"] == []
        [hole] = core["holes"]
        assert hole["missing"] == "right"
        assert hole["missing_token"] == "pull"
        assert core["cells_covered"] == 0

    def test_empty_cells_join_cleanly(self):
        core = speedup_cells([], "push:pull")
        assert core["rows"] == [] and core["holes"] == []

    def test_zero_time_side_has_no_factor(self):
        cells = [
            {"algorithm": "a", "variant": "push", "runtime": "sm",
             "family": "baseline", "time_mtu": 0.0, "counters": {}},
            {"algorithm": "a", "variant": "pull", "runtime": "sm",
             "family": "baseline", "time_mtu": 3.0, "counters": {}},
        ]
        [row] = speedup_cells(cells, "push:pull")["rows"]
        assert row["factor"] is None and row["winner"] == "push"

    def test_unknown_machine_falls_back_to_raw_counts(self):
        cells = [
            {"algorithm": "a", "variant": "push", "runtime": "sm",
             "family": "baseline", "machine": "mystery", "time_mtu": 2.0,
             "counters": {"reads": 10}},
            {"algorithm": "a", "variant": "pull", "runtime": "sm",
             "family": "baseline", "machine": "mystery", "time_mtu": 1.0,
             "counters": {"reads": 4}},
        ]
        [row] = speedup_cells(cells, "push:pull")["rows"]
        att = row["attribution"]
        assert att["unit"] == "count"
        assert att["leaders"] == [{"counter": "reads", "delta": 6.0}]


class TestSchemaGate:
    def _old(self, tmp_path, baseline):
        mut = copy.deepcopy(baseline)
        mut["schema"] = "repro-bench/2"
        p = tmp_path / "old.json"
        p.write_text(json.dumps(mut))
        return str(p)

    @pytest.fixture()
    def baseline(self):
        return json.loads(Path(TRACE).read_text())

    def test_older_against_raises(self, tmp_path, baseline):
        with pytest.raises(BenchDiffError, match="regenerate the older"):
            build_speedup(TRACE, against_path=self._old(tmp_path, baseline))

    def test_older_source_raises(self, tmp_path, baseline):
        # the gate is direction-agnostic: an old *source* against the
        # current committed document fails the same way
        with pytest.raises(BenchDiffError, match="regenerate the older"):
            build_speedup(self._old(tmp_path, baseline), against_path=TRACE)

    def test_matching_against_joins_both_documents(self, tmp_path, baseline):
        p = tmp_path / "same.json"
        p.write_text(json.dumps(baseline))
        doc = build_speedup(TRACE, against_path=str(p), pairs="push:pull")
        assert doc["cells_total"] == 40
        assert doc["against"]["cells"] == 20


class TestRendering:
    def test_markdown_tables(self, doc):
        md = markdown(doc)
        assert md.startswith("# Speedup tables (repro-speedup/1)")
        assert "## push vs pull" in md
        assert md.count("| pagerank/") == 3
        for r in doc["rows"]:
            assert f"| {r['key']} |" in md

    def test_markdown_reports_holes(self):
        md = markdown(build_speedup(TRACE, pairs="mp:rma"))
        assert "hole" in md and "`mp`" in md

    def test_summary_lines(self, doc):
        lines = summary(doc)
        assert "10 comparison(s)" in lines[0]
        assert "20/20 cells covered" in lines[0]
        assert len(lines) == 11


class TestSpeedupCli:
    def test_markdown_and_report(self, capsys, tmp_path):
        report = tmp_path / "speedup.json"
        rc = main(["bench", "speedup", TRACE, "--pairs", "push:pull",
                   "--markdown", "--report", str(report)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "## push vs pull" in out
        assert "comparison(s)" not in out  # markdown replaces the summary
        saved = json.loads(report.read_text())
        assert saved["schema"] == SPEEDUP_SCHEMA
        assert saved["cells_covered"] == 20

    def test_plain_summary_default(self, capsys):
        rc = main(["bench", "speedup", TRACE])
        assert rc == 0
        assert "10 comparison(s)" in capsys.readouterr().out

    def test_deterministic_output(self, capsys):
        main(["bench", "speedup", TRACE, "--markdown"])
        first = capsys.readouterr().out
        main(["bench", "speedup", TRACE, "--markdown"])
        assert capsys.readouterr().out == first

    def test_holes_exit_zero(self, capsys):
        rc = main(["bench", "speedup", TRACE, "--pairs", "mp:rma"])
        assert rc == 0
        assert "hole" in capsys.readouterr().out

    def test_schema_mismatch_exits_two(self, capsys, tmp_path):
        old = copy.deepcopy(json.loads(Path(TRACE).read_text()))
        old["schema"] = "repro-bench/2"
        p = tmp_path / "old.json"
        p.write_text(json.dumps(old))
        for argv in (["bench", "speedup", TRACE, "--against", str(p)],
                     ["bench", "speedup", str(p), "--against", TRACE]):
            assert main(argv) == 2
            assert "regenerate the older" in capsys.readouterr().err

    def test_bad_pair_exits_two(self, capsys):
        rc = main(["bench", "speedup", TRACE, "--pairs", "push"])
        assert rc == 2
        assert "bad pair" in capsys.readouterr().err
