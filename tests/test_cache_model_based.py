"""Model-based testing of the cache simulator against a reference LRU."""

from collections import OrderedDict

from hypothesis import given, settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, rule

from repro.machine.cache import CacheLevelSpec, _SetAssocLevel


class _ReferenceLRU:
    """Dead-simple per-set LRU model to check the array implementation."""

    def __init__(self, n_sets: int, ways: int) -> None:
        self.n_sets = n_sets
        self.ways = ways
        self.sets = [OrderedDict() for _ in range(n_sets)]
        self.misses = 0

    def access(self, line: int) -> bool:
        s = self.sets[line % self.n_sets]
        if line in s:
            s.move_to_end(line)
            return True
        self.misses += 1
        if len(s) >= self.ways:
            s.popitem(last=False)
        s[line] = None
        return False


class CacheAgainstModel(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        spec = CacheLevelSpec(1024, 2, 64)   # 8 sets x 2 ways
        self.impl = _SetAssocLevel(spec)
        self.model = _ReferenceLRU(spec.n_sets, spec.ways)

    @rule(line=st.integers(0, 255))
    def access(self, line):
        assert self.impl.access(line) == self.model.access(line)
        assert self.impl.misses == self.model.misses


TestCacheAgainstModel = CacheAgainstModel.TestCase


class TestSweeps:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(0, 511), min_size=1, max_size=300),
           st.sampled_from([1, 2, 4]))
    def test_random_traces_match_model(self, trace, ways):
        spec = CacheLevelSpec(64 * ways * 4, ways, 64)  # 4 sets
        impl = _SetAssocLevel(spec)
        model = _ReferenceLRU(spec.n_sets, ways)
        for line in trace:
            assert impl.access(line) == model.access(line)
        assert impl.misses == model.misses

    def test_capacity_scaling_reduces_misses_on_cyclic_trace(self):
        """A cyclic working set that thrashes a small cache fits a big one."""
        trace = list(range(12)) * 20
        misses = {}
        for ways in (1, 2, 16):
            impl = _SetAssocLevel(CacheLevelSpec(ways * 4 * 64, ways, 64))
            for line in trace:
                impl.access(line)
            misses[ways] = impl.misses
        # 16 ways x 4 sets holds all 12 lines: only cold misses remain
        assert misses[16] == 12
        assert misses[1] > misses[16]
