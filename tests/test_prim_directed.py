"""Tests for the extensions: push/pull Prim and directed-graph support."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import networkx as nx

from repro.algorithms.bfs import bfs
from repro.algorithms.mst_prim import prim_mst
from repro.algorithms.pagerank import pagerank
from repro.algorithms.reference import (
    bfs_reference, mst_weight_reference, pagerank_reference,
)
from repro.generators import erdos_renyi
from repro.graph import from_edges, to_networkx
from tests.conftest import make_runtime


def _directed_graph(n=80, m=300, seed=1):
    rng = np.random.default_rng(seed)
    return from_edges(n, rng.integers(0, n, size=(m, 2)), directed=True)


class TestPrim:
    @pytest.mark.parametrize("direction", ["push", "pull"])
    def test_weight_matches_kruskal(self, er_weighted, direction):
        ref = mst_weight_reference(er_weighted)
        rt = make_runtime(er_weighted)
        r = prim_mst(er_weighted, rt, direction=direction)
        assert r.total_weight == pytest.approx(ref)

    @pytest.mark.parametrize("direction", ["push", "pull"])
    def test_edges_form_forest(self, er_weighted, direction):
        rt = make_runtime(er_weighted)
        r = prim_mst(er_weighted, rt, direction=direction)
        f = nx.Graph(r.edges)
        assert nx.is_forest(f)
        n_comp = nx.number_connected_components(to_networkx(er_weighted))
        assert len(r.edges) == er_weighted.n - n_comp

    def test_agrees_with_boruvka(self, road_graph):
        from repro.algorithms.mst_boruvka import boruvka_mst
        rt = make_runtime(road_graph)
        prim = prim_mst(road_graph, rt, direction="push")
        rt = make_runtime(road_graph)
        boruvka = boruvka_mst(road_graph, rt, direction="pull")
        assert prim.total_weight == pytest.approx(boruvka.total_weight)

    def test_push_uses_cas_pull_does_not(self, er_weighted):
        rt = make_runtime(er_weighted)
        push = prim_mst(er_weighted, rt, direction="push")
        rt = make_runtime(er_weighted)
        pull = prim_mst(er_weighted, rt, direction="pull")
        assert push.counters.cas > 0 and pull.counters.cas == 0

    def test_pull_reads_more(self, er_weighted):
        """Pull probes every fringe vertex per round -- the read-heavy
        profile of every pull variant in the paper."""
        rt = make_runtime(er_weighted)
        push = prim_mst(er_weighted, rt, direction="push")
        rt = make_runtime(er_weighted)
        pull = prim_mst(er_weighted, rt, direction="pull")
        assert pull.counters.reads > push.counters.reads

    def test_rounds_equal_n(self, er_weighted):
        rt = make_runtime(er_weighted)
        r = prim_mst(er_weighted, rt, direction="push")
        assert r.rounds == er_weighted.n

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_random_graphs(self, seed):
        g = erdos_renyi(40, d_bar=3.0, seed=seed, weighted=True)
        ref = mst_weight_reference(g)
        rt = make_runtime(g)
        assert prim_mst(g, rt, direction="push").total_weight == \
            pytest.approx(ref)


class TestDirectedPageRank:
    @pytest.mark.parametrize("direction", ["push", "pull", "push-pa"])
    def test_matches_reference(self, direction):
        g = _directed_graph()
        ref = pagerank_reference(g, 8)
        rt = make_runtime(g)
        r = pagerank(g, rt, direction=direction, iterations=8)
        assert np.allclose(r.ranks, ref, atol=1e-12)

    def test_matches_networkx_directed(self):
        g = _directed_graph(seed=3)
        # drop dangling vertices for comparability with nx.pagerank
        out_deg = np.diff(g.offsets)
        if not np.all(out_deg > 0):
            pytest.skip("random draw produced dangling vertices")
        rt = make_runtime(g)
        r = pagerank(g, rt, direction="pull", iterations=100)
        nxpr = nx.pagerank(to_networkx(g), alpha=0.85, tol=1e-12)
        ours = r.ranks / r.ranks.sum()
        assert np.allclose(ours, [nxpr[i] for i in range(g.n)], atol=1e-8)

    def test_pull_reads_in_edges(self):
        """On a star pointing AT vertex 0, pull must read 0's in-edges."""
        g = from_edges(5, [(i, 0) for i in range(1, 5)], directed=True)
        ref = pagerank_reference(g, 4)
        rt = make_runtime(g)
        r = pagerank(g, rt, direction="pull", iterations=4)
        assert np.allclose(r.ranks, ref)
        assert r.ranks[0] > r.ranks[1]


class TestDirectedBFS:
    @pytest.mark.parametrize("direction", ["push", "pull"])
    def test_matches_reference(self, direction):
        g = _directed_graph(seed=5)
        ref = bfs_reference(g, 0)
        rt = make_runtime(g)
        r = bfs(g, rt, 0, direction=direction)
        assert np.array_equal(r.level, ref)

    def test_edge_direction_respected(self):
        g = from_edges(3, [(0, 1), (2, 1)], directed=True)
        for d in ("push", "pull"):
            rt = make_runtime(g)
            r = bfs(g, rt, 0, direction=d)
            assert r.level[1] == 1 and r.level[2] == -1  # 2 unreachable

    def test_pull_parent_has_arc_to_child(self):
        g = _directed_graph(seed=7)
        rt = make_runtime(g)
        r = bfs(g, rt, 0, direction="pull")
        for v in range(g.n):
            if r.level[v] > 0:
                assert g.has_edge(int(r.parent[v]), v)
