"""Tests for the extra synthetic families."""

import pytest

import networkx as nx

from repro.generators import (
    barabasi_albert, bipartite_random, erdos_renyi, watts_strogatz,
)
from repro.graph import to_networkx
from repro.graph.partition import Partition1D
from repro.graph.partition_strategies import edge_cut
from repro.graph.properties import approx_diameter
from repro.strategies.partition_awareness import pa_atomics_bounds


class TestWattsStrogatz:
    def test_ring_lattice_structure(self):
        g = watts_strogatz(50, k=4, rewire=0.0, seed=1)
        assert g.m == 100  # n * k / 2
        assert set(int(w) for w in g.neighbors(0)) == {1, 2, 48, 49}

    def test_rewiring_shrinks_diameter(self):
        ring = watts_strogatz(300, k=4, rewire=0.0, seed=1)
        small = watts_strogatz(300, k=4, rewire=0.3, seed=1)
        assert approx_diameter(small) < approx_diameter(ring) / 2

    def test_clustering_above_er(self):
        ws = watts_strogatz(200, k=6, rewire=0.05, seed=2)
        er = erdos_renyi(200, d_bar=3.0, seed=2)
        assert (nx.average_clustering(to_networkx(ws))
                > nx.average_clustering(to_networkx(er)) + 0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            watts_strogatz(10, k=3)
        with pytest.raises(ValueError):
            watts_strogatz(10, k=4, rewire=1.5)
        with pytest.raises(ValueError):
            watts_strogatz(4, k=4)


class TestBarabasiAlbert:
    def test_size(self):
        g = barabasi_albert(200, attach=2, seed=1)
        assert g.n == 200
        assert g.m <= 2 * (200 - 2)

    def test_heavy_tail(self):
        ba = barabasi_albert(400, attach=2, seed=3)
        er = erdos_renyi(400, d_bar=2.0, seed=3)
        assert ba.max_degree > 2 * er.max_degree

    def test_connected(self):
        g = barabasi_albert(100, attach=2, seed=1)
        assert nx.is_connected(to_networkx(g))

    def test_validation(self):
        with pytest.raises(ValueError):
            barabasi_albert(2, attach=2)


class TestBipartite:
    def test_every_edge_crosses(self):
        g = bipartite_random(40, 60, d_bar=4.0, seed=1)
        for v, w in g.edges():
            assert (v < 40) != (w < 40)

    def test_is_bipartite(self):
        g = bipartite_random(30, 30, seed=2)
        assert nx.is_bipartite(to_networkx(g))

    def test_pa_worst_case_bound_attained(self):
        """The Section-5 upper bound (2m atomics) is tight when the two
        sides are owned by different threads."""
        g = bipartite_random(64, 64, d_bar=4.0, seed=3)
        lo, actual, hi = pa_atomics_bounds(g, 2)
        assert actual == hi == 2 * g.m

    def test_cut_equals_2m(self):
        g = bipartite_random(64, 64, d_bar=4.0, seed=3)
        assert edge_cut(g, Partition1D(g.n, 2)) == 2 * g.m

    def test_validation(self):
        with pytest.raises(ValueError):
            bipartite_random(0, 5)
