"""Unit + property tests for the CSR graph substrate."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import networkx as nx

from repro.graph import CSRGraph, from_edges, from_networkx, to_networkx


@st.composite
def edge_lists(draw, max_n=30, max_m=80):
    n = draw(st.integers(2, max_n))
    m = draw(st.integers(0, max_m))
    edges = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        min_size=m, max_size=m))
    return n, edges


class TestConstruction:
    def test_tiny(self, tiny_graph):
        assert tiny_graph.n == 6 and tiny_graph.m == 6
        assert list(tiny_graph.neighbors(0)) == [1, 2, 3]
        assert list(tiny_graph.neighbors(5)) == []

    def test_neighbors_sorted(self, comm_graph):
        for v in range(comm_graph.n):
            nbrs = comm_graph.neighbors(v)
            assert np.all(np.diff(nbrs) > 0)

    def test_self_loops_dropped(self):
        g = from_edges(3, [(0, 0), (0, 1), (2, 2)])
        assert g.m == 1 and g.has_edge(0, 1)

    def test_duplicates_dropped(self):
        g = from_edges(3, [(0, 1), (1, 0), (0, 1)])
        assert g.m == 1

    def test_dedup_keeps_min_weight(self):
        g = from_edges(3, [(0, 1), (0, 1)], weights=[5.0, 2.0])
        assert g.weight_of(0, 1) == 2.0
        assert g.weight_of(1, 0) == 2.0

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            from_edges(3, [(0, 1)], weights=[-1.0])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            from_edges(3, [(0, 5)])

    def test_weight_length_mismatch(self):
        with pytest.raises(ValueError):
            from_edges(3, [(0, 1)], weights=[1.0, 2.0])

    def test_empty_graph(self):
        g = from_edges(4, [])
        assert g.n == 4 and g.m == 0 and g.max_degree == 0

    def test_invalid_offsets_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 2, 1]), np.array([1, 0], dtype=np.int32))

    def test_odd_undirected_adj_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 1]), np.array([0], dtype=np.int32))


class TestQueries:
    def test_degree_stats(self, tiny_graph):
        assert tiny_graph.degree(0) == 3
        assert tiny_graph.max_degree == 3
        assert tiny_graph.degrees.sum() == 2 * tiny_graph.m

    def test_n_cells_is_n_plus_2m(self, tiny_graph):
        assert tiny_graph.n_cells == tiny_graph.n + 2 * tiny_graph.m

    def test_has_edge(self, tiny_graph):
        assert tiny_graph.has_edge(0, 2) and not tiny_graph.has_edge(1, 3)

    def test_weight_of_unweighted_is_one(self, tiny_graph):
        assert tiny_graph.weight_of(0, 1) == 1.0

    def test_weight_of_missing_raises(self, tiny_graph):
        with pytest.raises(KeyError):
            tiny_graph.weight_of(1, 3)

    def test_edges_each_once(self, tiny_graph):
        e = tiny_graph.edges()
        assert len(e) == tiny_graph.m
        assert np.all(e[:, 0] < e[:, 1])

    def test_eq(self, tiny_graph):
        other = from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (3, 4)])
        assert tiny_graph == other
        assert tiny_graph != from_edges(6, [(0, 1)])

    def test_repr(self, tiny_graph):
        assert "n=6" in repr(tiny_graph)


class TestDirected:
    def test_directed_arcs(self):
        g = from_edges(3, [(0, 1), (1, 2)], directed=True)
        assert g.m == 2
        assert list(g.neighbors(0)) == [1]
        assert list(g.neighbors(1)) == [2]
        assert list(g.neighbors(2)) == []

    def test_transpose_reverses(self):
        g = from_edges(3, [(0, 1), (1, 2)], directed=True)
        t = g.transposed()
        assert list(t.neighbors(1)) == [0] and list(t.neighbors(2)) == [1]

    def test_transpose_cached(self):
        g = from_edges(3, [(0, 1)], directed=True)
        assert g.transposed() is g.transposed()

    def test_transpose_of_undirected_is_self(self, tiny_graph):
        assert tiny_graph.transposed() is tiny_graph

    def test_transpose_preserves_weights(self):
        g = from_edges(3, [(0, 1), (1, 2)], weights=[3.0, 7.0], directed=True)
        t = g.transposed()
        assert t.weight_of(1, 0) == 3.0 and t.weight_of(2, 1) == 7.0

    def test_double_transpose_identity(self):
        g = from_edges(5, [(0, 1), (1, 2), (3, 1), (4, 0)], directed=True)
        tt = g.transposed().transposed()
        assert np.array_equal(tt.offsets, g.offsets)
        assert np.array_equal(tt.adj, g.adj)


class TestNetworkxInterop:
    @settings(max_examples=30, deadline=None)
    @given(edge_lists())
    def test_roundtrip_matches_networkx(self, ne):
        n, edges = ne
        g = from_edges(n, edges)
        nxg = nx.Graph()
        nxg.add_nodes_from(range(n))
        nxg.add_edges_from((u, v) for u, v in edges if u != v)
        assert g.m == nxg.number_of_edges()
        for v in range(n):
            assert set(int(x) for x in g.neighbors(v)) == set(nxg.neighbors(v))

    def test_to_from_networkx(self, comm_graph):
        again = from_networkx(to_networkx(comm_graph))
        assert again == comm_graph

    def test_weighted_roundtrip(self, tiny_weighted):
        again = from_networkx(to_networkx(tiny_weighted))
        assert again == tiny_weighted


class TestProperties:
    @settings(max_examples=30, deadline=None)
    @given(edge_lists())
    def test_undirected_symmetry(self, ne):
        n, edges = ne
        g = from_edges(n, edges)
        for v in range(n):
            for w in g.neighbors(v):
                assert g.has_edge(int(w), v)

    @settings(max_examples=30, deadline=None)
    @given(edge_lists())
    def test_offsets_consistent(self, ne):
        n, edges = ne
        g = from_edges(n, edges)
        assert g.offsets[0] == 0 and g.offsets[-1] == len(g.adj)
        assert np.all(np.diff(g.offsets) >= 0)
