"""Tests for the plain-text chart helpers."""


from repro.harness.charts import bar_chart, log_bar_chart, sparkline
from repro.harness.tables import render_series


class TestSparkline:
    def test_monotone(self):
        assert sparkline([1, 2, 3, 4]) == "▁▃▆█"

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_single(self):
        assert len(sparkline([3])) == 1

    def test_resampling_width(self):
        out = sparkline(list(range(100)), width=10)
        assert len(out) == 10
        assert out[0] < out[-1]

    def test_extremes_hit_range_ends(self):
        out = sparkline([0, 100, 0])
        assert out[1] == "█" and out[0] == "▁"


class TestBarChart:
    def test_scaling(self):
        out = bar_chart([("a", 10), ("b", 5)], width=10)
        lines = out.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_zero_value_no_bar(self):
        out = bar_chart([("a", 10), ("b", 0)], width=10)
        assert out.splitlines()[1].count("█") == 0

    def test_small_nonzero_keeps_one_block(self):
        out = bar_chart([("a", 1000), ("b", 1)], width=10)
        assert out.splitlines()[1].count("█") == 1

    def test_empty(self):
        assert bar_chart([]) == "(empty)"

    def test_labels_aligned(self):
        out = bar_chart([("short", 1), ("a-long-label", 2)])
        lines = out.splitlines()
        assert lines[0].index("█") == lines[1].index("█")


class TestLogBarChart:
    def test_compresses_large_spreads(self):
        out = log_bar_chart([("mp", 1), ("rma", 1000)], width=30)
        lines = out.splitlines()
        assert 0 < lines[0].count("█") < lines[1].count("█") == 30

    def test_equal_values_full_width(self):
        out = log_bar_chart([("a", 7), ("b", 7)], width=5)
        assert all(line.count("█") == 5 for line in out.splitlines())

    def test_nonpositive_handled(self):
        out = log_bar_chart([("a", 0), ("b", 10)])
        assert out.splitlines()[0].count("█") == 0


class TestSeriesIntegration:
    def test_render_series_appends_sparkline(self):
        out = render_series("s", [1, 2, 3])
        assert out.startswith("s: 1 2 3")
        assert "▁" in out or "█" in out

    def test_non_numeric_series_safe(self):
        assert render_series("s", ["push", "pull"]).startswith("s: push pull")
