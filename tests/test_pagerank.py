"""Correctness + instrumentation tests for push/pull/PA PageRank."""

import numpy as np
import pytest

import networkx as nx

from repro.algorithms.pagerank import pagerank
from repro.algorithms.reference import pagerank_reference
from repro.graph import to_networkx
from tests.conftest import make_runtime

DIRECTIONS = ("push", "pull", "push-pa")


@pytest.mark.parametrize("direction", DIRECTIONS)
class TestCorrectness:
    def test_matches_reference(self, comm_graph, direction):
        ref = pagerank_reference(comm_graph, 10)
        rt = make_runtime(comm_graph, check_ownership=(direction == "pull"))
        r = pagerank(comm_graph, rt, direction=direction, iterations=10)
        assert np.allclose(r.ranks, ref, atol=1e-12)

    def test_handles_isolated_vertices(self, tiny_graph, direction):
        rt = make_runtime(tiny_graph)
        r = pagerank(tiny_graph, rt, direction=direction, iterations=5)
        # isolated vertex 5 receives only the teleport mass
        assert r.ranks[5] == pytest.approx(0.15 / 6)

    def test_road_graph(self, road_graph, direction):
        ref = pagerank_reference(road_graph, 6)
        rt = make_runtime(road_graph)
        r = pagerank(road_graph, rt, direction=direction, iterations=6)
        assert np.allclose(r.ranks, ref, atol=1e-12)


class TestAgainstNetworkx:
    def test_converged_ranks_match_networkx(self, comm_graph):
        """On a graph without dangling vertices, the paper's recurrence
        converges to networkx's pagerank."""
        deg = np.diff(comm_graph.offsets)
        assert np.all(deg > 0), "fixture must have no isolated vertices"
        rt = make_runtime(comm_graph)
        r = pagerank(comm_graph, rt, direction="pull", iterations=100)
        nxpr = nx.pagerank(to_networkx(comm_graph), alpha=0.85, tol=1e-12)
        ours = r.ranks / r.ranks.sum()
        theirs = np.array([nxpr[i] for i in range(comm_graph.n)])
        assert np.allclose(ours, theirs, atol=1e-8)


class TestInstrumentation:
    def test_pull_zero_atomics(self, comm_graph):
        rt = make_runtime(comm_graph)
        r = pagerank(comm_graph, rt, direction="pull", iterations=3)
        assert r.counters.atomics == 0 and r.counters.locks == 0

    def test_push_atomics_are_2mL(self, comm_graph):
        rt = make_runtime(comm_graph)
        L = 3
        r = pagerank(comm_graph, rt, direction="push", iterations=L)
        assert r.counters.atomics == 2 * comm_graph.m * L
        assert r.counters.cas == r.counters.atomics  # float CAS loop

    def test_pa_atomics_fewer_and_batched(self, comm_graph):
        rt = make_runtime(comm_graph)
        push = pagerank(comm_graph, rt, direction="push", iterations=2)
        rt = make_runtime(comm_graph)
        pa = pagerank(comm_graph, rt, direction="push-pa", iterations=2)
        assert 0 < pa.counters.atomics < push.counters.atomics
        assert pa.counters.atomics_batched == pa.counters.atomics

    def test_pull_reads_exceed_push_reads(self, comm_graph):
        """Pull fetches rank AND degree per edge entry (Section 7.3)."""
        rt = make_runtime(comm_graph)
        push = pagerank(comm_graph, rt, direction="push", iterations=2)
        rt = make_runtime(comm_graph)
        pull = pagerank(comm_graph, rt, direction="pull", iterations=2)
        assert pull.counters.reads > push.counters.reads

    def test_iteration_times_recorded(self, comm_graph):
        rt = make_runtime(comm_graph)
        r = pagerank(comm_graph, rt, direction="pull", iterations=4)
        assert len(r.iteration_times) == 4
        assert all(t > 0 for t in r.iteration_times)
        assert sum(r.iteration_times) == pytest.approx(r.time)


class TestConvergence:
    def test_tol_stops_early(self, comm_graph):
        rt = make_runtime(comm_graph)
        r = pagerank(comm_graph, rt, direction="pull", iterations=500,
                     tol=1e-10)
        assert r.converged and r.iterations < 500

    def test_tol_result_stable(self, comm_graph):
        rt = make_runtime(comm_graph)
        r = pagerank(comm_graph, rt, direction="pull", iterations=500,
                     tol=1e-12)
        ref = pagerank_reference(comm_graph, r.iterations)
        assert np.allclose(r.ranks, ref, atol=1e-10)

    def test_rank_mass_conserved_without_dangling(self, comm_graph):
        deg = np.diff(comm_graph.offsets)
        assert np.all(deg > 0)
        rt = make_runtime(comm_graph)
        r = pagerank(comm_graph, rt, direction="pull", iterations=50)
        assert r.ranks.sum() == pytest.approx(1.0, abs=1e-9)


class TestValidation:
    def test_bad_direction(self, tiny_graph):
        rt = make_runtime(tiny_graph)
        with pytest.raises(ValueError):
            pagerank(tiny_graph, rt, direction="sideways")

    def test_push_and_pull_agree_on_every_fixture(
            self, tiny_graph, er_graph, pa_graph, rmat_graph):
        for g in (tiny_graph, er_graph, pa_graph, rmat_graph):
            rts = [make_runtime(g) for _ in range(2)]
            a = pagerank(g, rts[0], direction="push", iterations=5)
            b = pagerank(g, rts[1], direction="pull", iterations=5)
            assert np.allclose(a.ranks, b.ranks, atol=1e-12)
