"""Unit tests for the trace-driven cache / TLB simulator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.machine.cache import (
    CacheHierarchySpec, CacheLevelSpec, CacheSim, TLBSpec, _SetAssocLevel, _TLB,
)


def tiny_spec() -> CacheHierarchySpec:
    return CacheHierarchySpec(
        l1=CacheLevelSpec(512, 2, 64),      # 4 sets x 2 ways
        l2=CacheLevelSpec(2048, 4, 64),
        l3=CacheLevelSpec(8192, 4, 64),
        tlb=TLBSpec(4, 4096),
    )


class TestLevelSpec:
    def test_n_sets(self):
        assert CacheLevelSpec(32 * 1024, 8, 64).n_sets == 64

    def test_too_small_raises(self):
        with pytest.raises(ValueError):
            CacheLevelSpec(32, 8, 64).n_sets


class TestSetAssocLevel:
    def test_repeat_access_hits(self):
        lvl = _SetAssocLevel(CacheLevelSpec(512, 2, 64))
        assert lvl.access(5) is False
        assert lvl.access(5) is True
        assert lvl.misses == 1

    def test_lru_eviction(self):
        lvl = _SetAssocLevel(CacheLevelSpec(512, 2, 64))  # 4 sets, 2 ways
        # three lines in the same set (stride = n_sets)
        a, b, c = 0, 4, 8
        lvl.access(a)
        lvl.access(b)
        lvl.access(c)          # evicts a (LRU)
        assert lvl.access(b) is True
        assert lvl.access(a) is False  # was evicted

    def test_distinct_sets_do_not_conflict(self):
        lvl = _SetAssocLevel(CacheLevelSpec(512, 2, 64))
        for line in range(4):
            lvl.access(line)
        assert all(lvl.access(line) for line in range(4))


class TestTLB:
    def test_lru_and_capacity(self):
        tlb = _TLB(TLBSpec(2, 4096))
        tlb.access(1)
        tlb.access(2)
        assert tlb.access(1) is True
        tlb.access(3)          # evicts 2 (LRU after 1 was refreshed)
        assert tlb.access(2) is False
        assert tlb.misses == 4


class TestCacheSim:
    def test_sequential_scan_misses_once_per_line(self):
        sim = CacheSim(tiny_spec())
        addrs = np.arange(0, 64, 8, dtype=np.int64)  # one line of 8B items
        sim.access(addrs)
        assert sim.l1_misses == 1

    def test_streaming_collapses_duplicates(self):
        sim = CacheSim(tiny_spec())
        sim.access(np.zeros(100, dtype=np.int64))
        assert sim.accesses == 1

    def test_scalar_access(self):
        sim = CacheSim(tiny_spec())
        sim.access(4096)
        assert sim.l1_misses == 1 and sim.tlb_misses == 1

    def test_inclusive_hierarchy_order(self):
        sim = CacheSim(tiny_spec())
        # touch more lines than L1 holds but fewer than L2
        addrs = np.arange(0, 1024, 64, dtype=np.int64)  # 16 lines; L1 = 8
        sim.access(addrs)
        sim.access(addrs)
        # second pass: all L1 capacity misses hit in L2
        assert sim.l2.misses == 16
        assert sim.l1.misses > 16

    def test_empty_batch(self):
        sim = CacheSim(tiny_spec())
        sim.access(np.empty(0, dtype=np.int64))
        assert sim.accesses == 0

    def test_snapshot_keys(self):
        sim = CacheSim(tiny_spec())
        sim.access(0)
        snap = sim.snapshot()
        assert set(snap) == {"accesses", "l1_misses", "l2_misses",
                             "l3_misses", "tlb_misses"}

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(0, 1 << 20), min_size=1, max_size=200))
    def test_misses_bounded_by_accesses(self, raw):
        sim = CacheSim(tiny_spec())
        sim.access(np.asarray(raw, dtype=np.int64))
        assert sim.l1_misses <= sim.accesses
        assert sim.l2_misses <= sim.l1_misses
        assert sim.l3_misses <= sim.l2_misses

    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.integers(0, 1 << 16), min_size=1, max_size=100))
    def test_second_identical_pass_never_increases_l3(self, raw):
        """A working set rescan can only hit closer to the core."""
        addrs = np.asarray(raw, dtype=np.int64)
        sim = CacheSim(tiny_spec())
        sim.access(addrs)
        first = sim.l3_misses
        sim.access(addrs)
        second = sim.l3_misses - first
        assert second <= first
