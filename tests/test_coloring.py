"""Correctness + instrumentation tests for Boman graph coloring."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.coloring import boman_coloring
from repro.algorithms.reference import (
    greedy_coloring_reference, is_proper_coloring,
)
from repro.generators import community_graph, erdos_renyi
from repro.graph import from_edges
from tests.conftest import make_runtime

DIRECTIONS = ("push", "pull")


@pytest.mark.parametrize("direction", DIRECTIONS)
class TestCorrectness:
    def test_proper_on_fixtures(self, comm_graph, road_graph, pa_graph,
                                direction):
        for g in (comm_graph, road_graph, pa_graph):
            rt = make_runtime(g, check_ownership=(direction == "pull"))
            r = boman_coloring(g, rt, direction=direction)
            assert is_proper_coloring(g, r.colors)
            assert r.n_colors == int(r.colors.max()) + 1

    def test_bipartite_uses_few_colors(self, direction):
        g = from_edges(8, [(i, j) for i in range(4) for j in range(4, 8)])
        rt = make_runtime(g)
        r = boman_coloring(g, rt, direction=direction)
        assert is_proper_coloring(g, r.colors)
        assert r.n_colors <= 5  # greedy on K4,4 stays near 2

    def test_converges_to_zero_conflicts(self, comm_graph, direction):
        rt = make_runtime(comm_graph)
        r = boman_coloring(comm_graph, rt, direction=direction)
        assert r.conflicts_per_iteration[-1] == 0

    def test_single_thread_no_conflicts(self, comm_graph, direction):
        rt = make_runtime(comm_graph, P=1)
        r = boman_coloring(comm_graph, rt, direction=direction)
        assert r.iterations == 1
        assert r.counters.locks == 0

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10**6), P=st.integers(2, 8))
    def test_proper_on_random_graphs(self, direction, seed, P):
        g = erdos_renyi(64, d_bar=3.0, seed=seed)
        rt = make_runtime(g, P=P)
        r = boman_coloring(g, rt, direction=direction)
        assert is_proper_coloring(g, r.colors)

    def test_color_budget_exhaustion_raises(self, direction):
        k = 9
        g = from_edges(k, [(i, j) for i in range(k) for j in range(i + 1, k)])
        rt = make_runtime(g)
        with pytest.raises(RuntimeError):
            boman_coloring(g, rt, direction=direction, max_colors=4)


class TestInstrumentation:
    def test_equal_locks_first_iteration(self):
        """Table 1: BGC push and pull acquire the same number of locks."""
        g = community_graph(512, d_bar=12.0, seed=6)
        counters = {}
        for d in DIRECTIONS:
            rt = make_runtime(g, P=8)
            r = boman_coloring(g, rt, direction=d, max_iterations=1)
            counters[d] = r.counters
        assert counters["push"].locks == counters["pull"].locks

    def test_push_fewer_reads_first_iteration(self):
        """Table 1: pushing issues fewer reads (pull re-reads neighbor
        colors; push reads its compact avail row)."""
        g = community_graph(512, d_bar=12.0, seed=6)
        reads = {}
        for d in DIRECTIONS:
            rt = make_runtime(g, P=8)
            # realistic color budget: the bit-packed avail row is a few
            # words, far smaller than re-reading the neighborhood
            r = boman_coloring(g, rt, direction=d, max_colors=256,
                               max_iterations=1)
            reads[d] = r.counters.reads
        assert reads["push"] < reads["pull"]

    def test_iteration_cap_respected(self, comm_graph):
        rt = make_runtime(comm_graph)
        r = boman_coloring(comm_graph, rt, direction="push", max_iterations=2)
        assert r.iterations <= 2


class TestGreedyReference:
    def test_reference_proper(self, comm_graph):
        colors = greedy_coloring_reference(comm_graph)
        assert is_proper_coloring(comm_graph, colors)

    def test_reference_bounded_by_max_degree(self, comm_graph):
        colors = greedy_coloring_reference(comm_graph)
        assert colors.max() <= comm_graph.max_degree

    def test_incomplete_coloring_not_proper(self, tiny_graph):
        colors = greedy_coloring_reference(tiny_graph)
        colors[2] = -1
        assert not is_proper_coloring(tiny_graph, colors)
