"""Section-5 batched-atomic discount wired through the SM push kernels.

The cost model's ``atomic_batch_factor`` discounts a segregated
same-array atomic stream (Table 4's PA sensitivity); BFS, CC, and MST
push kernels issue their claim CASes as such streams.  These tests pin
(a) the counters actually mark the streams, (b) the discount moves
simulated time in the right direction, and (c) results are untouched.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.bfs import bfs
from repro.algorithms.connected_components import connected_components
from repro.algorithms.mst_boruvka import boruvka_mst
from repro.machine.cost_model import XC30
from tests.conftest import make_runtime


def _run(g, algo, direction, factor=None):
    machine = XC30 if factor is None else XC30.with_(
        atomic_batch_factor=factor)
    rt = make_runtime(g, machine=machine)
    if algo == "bfs":
        res = bfs(g, rt, 0, direction=direction)
    elif algo == "cc":
        res = connected_components(g, rt, direction=direction)
    else:
        res = boruvka_mst(g, rt, direction=direction)
    return res, rt


@pytest.mark.parametrize("algo", ["bfs", "cc", "mst"])
class TestBatchedStreams:
    def test_push_marks_batched_atomics(self, comm_graph, algo):
        res, _ = _run(comm_graph, algo, "push")
        c = res.counters
        assert c.atomics_batched > 0
        assert c.atomics_batched <= c.atomics

    def test_pull_has_no_batched_stream(self, comm_graph, algo):
        res, _ = _run(comm_graph, algo, "pull")
        assert res.counters.atomics_batched == 0

    def test_discount_lowers_push_time(self, comm_graph, algo):
        full, _ = _run(comm_graph, algo, "push", factor=1.0)
        disc, _ = _run(comm_graph, algo, "push", factor=0.5)
        assert disc.time < full.time
        # the max-span of each region hides off-critical-path atomics,
        # so the discount is bounded by (not equal to) the full tally
        saved = full.time - disc.time
        w_atomic = XC30.scaled(64).w_atomic
        assert 0 < saved <= full.counters.atomics_batched * w_atomic * 0.5 + 1e-9

    def test_results_unchanged_by_discount(self, comm_graph, algo):
        full, _ = _run(comm_graph, algo, "push", factor=1.0)
        disc, _ = _run(comm_graph, algo, "push", factor=0.5)
        if algo == "bfs":
            assert np.array_equal(full.level, disc.level)
        elif algo == "cc":
            assert np.array_equal(full.labels, disc.labels)
        else:
            assert full.total_weight == disc.total_weight
