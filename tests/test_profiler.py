"""Tests for the region profiler."""

import numpy as np
import pytest

from repro.algorithms.pagerank import pagerank
from repro.machine.cost_model import XC30
from repro.machine.memory import CountingMemory
from repro.runtime.profiler import ProfiledRuntime, Profile, RegionRecord


def make_profiled(g, P=4):
    m = XC30.scaled(64)
    return ProfiledRuntime(g, P=P, machine=m,
                           memory=CountingMemory(m.hierarchy))


class TestRecording:
    def test_regions_recorded_with_spans(self, comm_graph):
        rt = make_profiled(comm_graph)
        r = pagerank(comm_graph, rt, direction="pull", iterations=2)
        assert len(rt.profile.records) > 0
        # pagerank self-describes its phases (the annotate() fold)
        assert {rec.label for rec in rt.profile.records} == \
            {"pr.pull", "pr.finalize"}
        assert rt.profile.total == pytest.approx(
            r.time - rt.machine.w_barrier * len(rt.profile.records), rel=0.2)

    def test_result_unchanged_by_profiling(self, comm_graph):
        from tests.conftest import make_runtime
        from repro.algorithms.reference import pagerank_reference
        rt = make_profiled(comm_graph)
        r = pagerank(comm_graph, rt, direction="push", iterations=3)
        assert np.allclose(r.ranks, pagerank_reference(comm_graph, 3))
        plain = make_runtime(comm_graph, P=4)
        r2 = pagerank(comm_graph, plain, direction="push", iterations=3)
        assert r.time == pytest.approx(r2.time)

    def test_auto_numbering_without_annotation(self, tiny_graph):
        rt = make_profiled(tiny_graph, P=2)
        rt.for_each_thread(lambda t, vs: None)
        assert rt.profile.records[0].label == "region-0"

    def test_sequential_recorded(self, tiny_graph):
        rt = make_profiled(tiny_graph, P=2)
        h = rt.mem.register("x", np.zeros(16))
        rt.annotate("greedy")
        rt.sequential(lambda: rt.mem.read(h, count=8))
        rec = rt.profile.records[-1]
        assert rec.label == "greedy [seq]"
        assert rec.thread_spans[1] == 0.0


class TestAnalysis:
    def test_imbalance_factor(self):
        rec = RegionRecord(0, "x", 10.0, [10.0, 2.0])
        assert rec.imbalance == pytest.approx(10.0 / 6.0)
        assert RegionRecord(0, "y", 0.0, [0.0, 0.0]).imbalance == 1.0

    def test_by_label_aggregates(self):
        p = Profile([RegionRecord(0, "a", 5.0, []),
                     RegionRecord(1, "b", 1.0, []),
                     RegionRecord(2, "a", 3.0, [])])
        assert p.by_label() == {"a": 8.0, "b": 1.0}

    def test_top_orders_by_span(self):
        p = Profile([RegionRecord(0, "a", 1.0, []),
                     RegionRecord(1, "b", 9.0, [])])
        assert p.top(1)[0].label == "b"

    def test_render(self, comm_graph):
        rt = make_profiled(comm_graph)
        rt.annotate("pr")
        pagerank(comm_graph, rt, direction="pull", iterations=1)
        text = rt.profile.render()
        assert "profile:" in text and "pr" in text and "imbalance" in text
