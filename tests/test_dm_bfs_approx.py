"""Tests for distributed BFS, approximate BC, and GAS PageRank."""

import numpy as np
import pytest

from repro.algorithms.bc_approx import approx_bc_vertex
from repro.algorithms.dm_bfs import dm_bfs
from repro.algorithms.reference import bc_reference, bfs_reference
from repro.gas.programs import gas_pagerank
from repro.generators import load_dataset
from repro.graph.validate import validate_bfs_tree
from repro.machine.cost_model import XC40
from repro.runtime.dm import DMRuntime
from tests.conftest import make_runtime


def make_dm(n, P=4):
    return DMRuntime(n, P=P, machine=XC40.scaled(64))


class TestDMBFS:
    @pytest.mark.parametrize("variant", ["push", "pull", "switching"])
    def test_levels_correct_and_certified(self, comm_graph, variant):
        root = int(np.argmax(np.diff(comm_graph.offsets)))
        ref = bfs_reference(comm_graph, root)
        rt = make_dm(comm_graph.n)
        r = dm_bfs(comm_graph, rt, root, variant=variant)
        assert np.array_equal(r.level, ref)
        validate_bfs_tree(comm_graph, root, r.parent, r.level)

    def test_switching_beats_both_on_community_graph(self):
        g = load_dataset("ljn", scale=10)
        root = int(np.argmax(np.diff(g.offsets)))
        times = {}
        for v in ("push", "pull", "switching"):
            rt = make_dm(g.n)
            times[v] = dm_bfs(g, rt, root, variant=v).time
        assert times["switching"] <= min(times["push"], times["pull"])

    def test_switching_stays_push_on_road_network(self):
        from repro.generators import road_network
        g = road_network(48, 48, seed=3, weighted=False)  # thin frontiers
        root = int(np.argmax(np.diff(g.offsets)))
        rt = make_dm(g.n)
        r = dm_bfs(g, rt, root, variant="switching")
        assert "pull" not in r.directions

    def test_pull_allgathers_bitmaps(self, comm_graph):
        root = int(np.argmax(np.diff(comm_graph.offsets)))
        rt = make_dm(comm_graph.n)
        pull = dm_bfs(comm_graph, rt, root, variant="pull")
        rt = make_dm(comm_graph.n)
        push = dm_bfs(comm_graph, rt, root, variant="push")
        # P*(P-1) bitmap messages per level dominate pull's message count
        assert pull.counters.messages > push.counters.messages

    def test_frontier_sizes_account_reached(self, comm_graph):
        root = int(np.argmax(np.diff(comm_graph.offsets)))
        rt = make_dm(comm_graph.n)
        r = dm_bfs(comm_graph, rt, root, variant="push")
        assert sum(r.frontier_sizes) == int((r.level >= 0).sum())

    def test_validation(self, comm_graph):
        rt = make_dm(comm_graph.n)
        with pytest.raises(ValueError):
            dm_bfs(comm_graph, rt, 0, variant="sideways")
        with pytest.raises(ValueError):
            dm_bfs(comm_graph, rt, -1)


class TestApproxBC:
    def test_exhaustive_sampling_is_exact(self, pa_graph):
        exact = bc_reference(pa_graph)
        v = int(np.argmax(exact))
        rt = make_runtime(pa_graph)
        r = approx_bc_vertex(pa_graph, rt, v, c=10**9)  # never stop early
        assert r.samples == pa_graph.n and not r.stopped_early
        assert r.estimate == pytest.approx(exact[v], rel=1e-9)

    def test_high_centrality_vertex_stops_early(self, comm_graph):
        exact = bc_reference(comm_graph)
        hub = int(np.argmax(exact))
        rt = make_runtime(comm_graph)
        r = approx_bc_vertex(comm_graph, rt, hub, c=0.5, seed=3)
        assert r.stopped_early and r.samples < comm_graph.n

    def test_estimate_within_factor_for_hub(self, comm_graph):
        exact = bc_reference(comm_graph)
        hub = int(np.argmax(exact))
        rt = make_runtime(comm_graph)
        r = approx_bc_vertex(comm_graph, rt, hub, c=2.0, seed=1)
        assert 0.3 * exact[hub] <= r.estimate <= 3.0 * exact[hub]

    def test_adaptive_cheaper_than_exact(self, comm_graph):
        exact = bc_reference(comm_graph)
        hub = int(np.argmax(exact))
        rt = make_runtime(comm_graph)
        cheap = approx_bc_vertex(comm_graph, rt, hub, c=0.5, seed=1)
        rt = make_runtime(comm_graph)
        full = approx_bc_vertex(comm_graph, rt, hub, c=10**9)
        assert cheap.time < full.time / 2

    def test_validation(self, comm_graph):
        rt = make_runtime(comm_graph)
        with pytest.raises(ValueError):
            approx_bc_vertex(comm_graph, rt, -1)
        with pytest.raises(ValueError):
            approx_bc_vertex(comm_graph, rt, 0, c=0.0)


class TestGASPageRank:
    def test_pull_converges_to_power_iteration(self, pa_graph):
        from repro.algorithms.reference import pagerank_reference
        st = gas_pagerank(pa_graph, mode="pull", max_iterations=300)
        ranks = np.array([st.values[v] for v in range(pa_graph.n)])
        assert np.allclose(ranks, pagerank_reference(pa_graph, 300),
                           atol=1e-7)

    def test_tolerance_controls_iterations(self, pa_graph):
        loose = gas_pagerank(pa_graph, mode="pull", tol=1e-3)
        tight = gas_pagerank(pa_graph, mode="pull", tol=1e-12)
        assert loose.iterations < tight.iterations

    def test_gathers_counted(self, pa_graph):
        st = gas_pagerank(pa_graph, mode="pull", tol=1e-6)
        assert st.gathers > 0 and st.remote_writes == 0
