"""Tests for edge-list I/O, the harness tables, config, and run_all CLI."""

import io

import numpy as np
import pytest

from repro.graph import relabel_random
from repro.graph.io import read_edge_list, write_edge_list
from repro.harness.config import DEFAULT, QUICK
from repro.harness.experiments import ALL, table2
from repro.harness.run_all import main as run_all_main
from repro.harness.tables import (
    ExperimentResult, render_series, render_table,
)


class TestEdgeListIO:
    def test_roundtrip_unweighted(self, comm_graph):
        buf = io.StringIO()
        write_edge_list(comm_graph, buf)
        buf.seek(0)
        again = read_edge_list(buf, n=comm_graph.n)
        assert again == comm_graph

    def test_roundtrip_weighted(self, tiny_weighted):
        buf = io.StringIO()
        write_edge_list(tiny_weighted, buf)
        buf.seek(0)
        again = read_edge_list(buf, n=tiny_weighted.n)
        assert again == tiny_weighted

    def test_file_roundtrip(self, tmp_path, pa_graph):
        path = tmp_path / "g.txt"
        write_edge_list(pa_graph, path)
        assert read_edge_list(path, n=pa_graph.n) == pa_graph

    def test_comments_and_compaction(self):
        text = "# header\n% other comment\n10 20\n20 30\n"
        g = read_edge_list(io.StringIO(text))
        assert g.n == 3 and g.m == 2  # ids compacted to 0..2

    def test_relabel_preserves_structure(self, pa_graph):
        shuffled = relabel_random(pa_graph, seed=3)
        assert shuffled.n == pa_graph.n and shuffled.m == pa_graph.m
        assert sorted(np.diff(shuffled.offsets)) == sorted(
            np.diff(pa_graph.offsets))


class TestTables:
    def test_render_table_aligns(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 223, "b": "z"}]
        text = render_table(rows)
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines if line.strip())) == 1

    def test_render_empty(self):
        assert render_table([]) == "(empty)"

    def test_render_series(self):
        assert render_series("s", [1, 2.5]).startswith("s: 1 2.5")

    def test_float_formatting(self):
        rows = [{"v": 0.000123}, {"v": 123456.0}, {"v": 0.5}]
        text = render_table(rows)
        assert "0.000123" in text and "1.23e+05" in text and "0.5" in text

    def test_experiment_result_checks(self):
        res = ExperimentResult("T", "title")
        assert res.check("ok claim", True)
        assert not res.check("bad claim", False, "why")
        assert not res.shape_ok
        text = res.render()
        assert "[OK ]" in text and "[FAIL]" in text and "[why]" in text

    def test_markdown_rendering(self):
        res = ExperimentResult("T", "title", rows=[{"a": 1}])
        res.check("claim", True)
        res.series["s"] = [1, 2]
        res.notes.append("a note")
        md = res.render_markdown()
        assert "| a |" in md and "- [x] claim" in md and "> a note" in md


class TestConfig:
    def test_quick_is_smaller(self):
        assert QUICK.scale < DEFAULT.scale
        assert QUICK.P < DEFAULT.P

    def test_scaled_machine(self):
        m = DEFAULT.scaled_machine()
        assert "s64" in m.name

    def test_sm_runtime_trace_mode(self, tiny_graph):
        from repro.machine.memory import CacheSimMemory, CountingMemory
        rt = DEFAULT.sm_runtime(tiny_graph, trace=True)
        assert isinstance(rt.mem, CacheSimMemory)
        rt = DEFAULT.sm_runtime(tiny_graph)
        assert isinstance(rt.mem, CountingMemory)

    def test_with_override(self):
        assert DEFAULT.with_(scale=5).scale == 5


class TestExperimentsRegistry:
    def test_all_modules_have_run(self):
        for name, mod in ALL.items():
            assert callable(mod.run), name

    def test_table2_quick(self):
        res = table2.run(QUICK)
        assert res.shape_ok
        assert len(res.rows) == 5

    def test_run_all_cli_single(self, capsys):
        code = run_all_main(["--quick", "table2"])
        out = capsys.readouterr().out
        assert code == 0 and "Table 2" in out and "0 failures" in out

    def test_run_all_cli_markdown(self, tmp_path, capsys):
        md = tmp_path / "report.md"
        run_all_main(["--quick", "--markdown", str(md), "table2"])
        assert "### Table 2" in md.read_text()

    def test_run_all_unknown_id(self):
        with pytest.raises(SystemExit):
            run_all_main(["definitely-not-an-experiment"])
