"""Tests for the Graph500-style BFS benchmark kernel."""

import pytest

from repro.harness.config import QUICK
from repro.harness.graph500 import Graph500Result, report, run_graph500


@pytest.fixture(scope="module")
def result():
    return run_graph500(QUICK, scale=9, n_roots=4)


class TestKernels:
    def test_all_roots_validated(self, result):
        assert result.validated == len(result.roots) == 4

    def test_teps_positive(self, result):
        assert all(t > 0 for t in result.teps)

    def test_construction_time_positive(self, result):
        assert result.construction_time > 0

    def test_roots_have_degree(self, result):
        from repro.generators.kronecker import rmat
        import numpy as np
        g = rmat(9, d_bar=16.0, seed=QUICK.seed)
        deg = np.diff(g.offsets)
        assert all(deg[r] > 0 for r in result.roots)

    def test_deterministic(self):
        a = run_graph500(QUICK, scale=8, n_roots=3)
        b = run_graph500(QUICK, scale=8, n_roots=3)
        assert a.teps == b.teps and a.roots == b.roots

    def test_pull_direction_also_validates(self):
        r = run_graph500(QUICK, scale=8, n_roots=2, direction="pull")
        assert r.validated == 2

    def test_push_teps_beats_pull_on_rmat(self):
        push = run_graph500(QUICK, scale=9, n_roots=3, direction="push")
        pull = run_graph500(QUICK, scale=9, n_roots=3, direction="pull")
        assert push.harmonic_mean_teps != pull.harmonic_mean_teps


class TestAggregation:
    def test_harmonic_mean(self):
        r = Graph500Result(8, 16.0, "push", 1, 1, 0.0, teps=[2.0, 2.0])
        assert r.harmonic_mean_teps == pytest.approx(2.0)
        r2 = Graph500Result(8, 16.0, "push", 1, 1, 0.0, teps=[1.0, 3.0])
        assert r2.harmonic_mean_teps == pytest.approx(1.5)

    def test_harmonic_mean_empty(self):
        assert Graph500Result(8, 16.0, "push", 1, 1, 0.0).harmonic_mean_teps == 0.0

    def test_report_renders(self, result):
        text = report(result)
        assert "harmonic mean" in text and "kernel 1" in text
