"""Differential MP ↔ RMA ↔ SM suite for the four DM kernels.

Every distributed-memory backend variant must compute exactly what the
shared-memory kernel and the sequential reference compute, on three
graph families (Erdős–Rényi, Kronecker/R-MAT, road lattice).  The
backends differ only in communication structure; any divergence in the
results is a correctness bug, not a modeling choice.
"""

from functools import lru_cache

import numpy as np
import pytest

from repro.algorithms.bfs import bfs
from repro.algorithms.dm_bfs import dm_bfs
from repro.algorithms.dm_pagerank import dm_pagerank
from repro.algorithms.dm_sssp import dm_sssp_delta
from repro.algorithms.dm_triangle import dm_triangle_count
from repro.algorithms.pagerank import pagerank
from repro.algorithms.reference import (
    bfs_reference, pagerank_reference, sssp_reference,
    triangle_per_vertex_reference,
)
from repro.algorithms.sssp_delta import sssp_delta
from repro.algorithms.triangle import triangle_count
from repro.generators import erdos_renyi, rmat, road_network
from repro.machine.cost_model import XC30, XC40
from repro.machine.memory import CountingMemory
from repro.runtime.dm import DMRuntime
from repro.runtime.sm import SMRuntime

FAMILIES = ("er", "kron", "road")
ITERATIONS = 4


@lru_cache(maxsize=None)
def family_graph(name: str, weighted: bool = False):
    if name == "er":
        return erdos_renyi(120, d_bar=4.0, seed=3, weighted=weighted)
    if name == "kron":
        return rmat(7, d_bar=4.0, seed=5, weighted=weighted)
    if name == "road":
        return road_network(10, 10, seed=5, weighted=weighted)
    raise ValueError(name)


def dm_rt(n: int) -> DMRuntime:
    return DMRuntime(n, 4, machine=XC40.scaled(64))


def sm_rt(g) -> SMRuntime:
    m = XC30.scaled(64)
    return SMRuntime(g, P=4, machine=m, memory=CountingMemory(m.hierarchy))


class TestBFSDifferential:
    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("variant", ["push", "pull", "switching"])
    def test_dm_levels_match_reference(self, family, variant):
        g = family_graph(family)
        ref = bfs_reference(g, 0)
        r = dm_bfs(g, dm_rt(g.n), root=0, variant=variant)
        assert np.array_equal(r.level, ref)

    @pytest.mark.parametrize("family", FAMILIES)
    def test_sm_levels_match_reference(self, family):
        g = family_graph(family)
        ref = bfs_reference(g, 0)
        for direction in ("push", "pull"):
            r = bfs(g, sm_rt(g), root=0, direction=direction)
            assert np.array_equal(r.level, ref)


class TestPageRankDifferential:
    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("variant", ["mp", "rma-push", "rma-pull"])
    def test_dm_ranks_match_reference(self, family, variant):
        g = family_graph(family)
        ref = pagerank_reference(g, ITERATIONS)
        r = dm_pagerank(g, dm_rt(g.n), variant=variant,
                        iterations=ITERATIONS)
        assert np.allclose(r.ranks, ref, atol=1e-12)

    @pytest.mark.parametrize("family", FAMILIES)
    def test_sm_ranks_match_reference(self, family):
        g = family_graph(family)
        ref = pagerank_reference(g, ITERATIONS)
        for direction in ("push", "pull"):
            r = pagerank(g, sm_rt(g), direction=direction,
                         iterations=ITERATIONS)
            assert np.allclose(r.ranks, ref, atol=1e-12)


class TestSSSPDifferential:
    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("variant", ["push", "pull"])
    def test_dm_distances_match_reference(self, family, variant):
        g = family_graph(family, weighted=True)
        ref = sssp_reference(g, 0)
        r = dm_sssp_delta(g, dm_rt(g.n), source=0, variant=variant)
        assert np.allclose(r.dist, ref, equal_nan=True)

    @pytest.mark.parametrize("family", FAMILIES)
    def test_sm_distances_match_reference(self, family):
        g = family_graph(family, weighted=True)
        ref = sssp_reference(g, 0)
        for direction in ("push", "pull"):
            r = sssp_delta(g, sm_rt(g), source=0, direction=direction)
            assert np.allclose(r.dist, ref, equal_nan=True)


class TestTriangleDifferential:
    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("variant", ["mp", "rma-push", "rma-pull"])
    def test_dm_counts_match_reference(self, family, variant):
        g = family_graph(family)
        ref = triangle_per_vertex_reference(g)
        r = dm_triangle_count(g, dm_rt(g.n), variant=variant)
        assert np.array_equal(r.per_vertex, ref)

    @pytest.mark.parametrize("family", FAMILIES)
    def test_sm_counts_match_reference(self, family):
        g = family_graph(family)
        ref = triangle_per_vertex_reference(g)
        for direction in ("push", "pull", "push-pa"):
            r = triangle_count(g, sm_rt(g), direction=direction)
            assert np.array_equal(r.per_vertex, ref)
