"""Tests for the distributed-memory runtime and DM algorithm variants."""

import numpy as np
import pytest

from repro.algorithms.dm_pagerank import dm_pagerank
from repro.algorithms.dm_triangle import dm_triangle_count
from repro.algorithms.reference import (
    pagerank_reference, triangle_per_vertex_reference,
)
from repro.machine.cost_model import XC40
from repro.runtime.dm import DMRuntime


def make_dm(n: int, P: int = 4) -> DMRuntime:
    return DMRuntime(n, P=P, machine=XC40.scaled(64))


class TestDMRuntime:
    def test_superstep_runs_all_processes(self):
        rt = make_dm(10, P=3)
        seen = []
        rt.superstep(lambda p: seen.append(p))
        assert seen == [0, 1, 2]

    def test_rank_only_inside_superstep(self):
        rt = make_dm(10)
        with pytest.raises(RuntimeError):
            _ = rt.rank

    def test_messages_delivered_next_superstep(self):
        rt = make_dm(10, P=2)
        rt.superstep(lambda p: rt.send(1 - p, f"from {p}"))
        inboxes = {}
        rt.superstep(lambda p: inboxes.update({p: rt.inbox()}))
        assert inboxes[0] == [(1, "from 1")]
        assert inboxes[1] == [(0, "from 0")]

    def test_message_counted_with_bytes(self):
        rt = make_dm(10, P=2)
        payload = np.zeros(10)
        rt.superstep(lambda p: rt.send(1 - p, payload) if p == 0 else None)
        assert rt.proc_counters[0].messages == 1
        assert rt.proc_counters[0].msg_bytes == 80

    def test_alltoallv_routing_and_cost(self):
        rt = make_dm(10, P=2)
        contributions = [["a->a", "a->b"], ["b->a", "b->b"]]
        received = rt.alltoallv(contributions)
        assert received[0] == ["a->a", "b->a"]
        assert received[1] == ["a->b", "b->b"]
        assert all(c.collectives > 0 for c in rt.proc_counters)

    def test_alltoallv_shape_validation(self):
        rt = make_dm(10, P=2)
        with pytest.raises(ValueError):
            rt.alltoallv([[None]])

    def test_rma_local_is_free_of_network(self):
        rt = make_dm(10, P=2)
        rt.superstep(lambda p: rt.rma_get(p, 8))
        assert all(c.remote_gets == 0 for c in rt.proc_counters)
        assert all(c.reads > 0 for c in rt.proc_counters)

    def test_rma_remote_counted(self):
        rt = make_dm(10, P=2)
        rt.superstep(lambda p: (rt.rma_get(1 - p, 4),
                                rt.rma_put(1 - p, 2),
                                rt.rma_accumulate(1 - p, 3, dtype="int"),
                                rt.rma_accumulate(1 - p, 1, dtype="float"),
                                rt.rma_flush()))
        c = rt.proc_counters[0]
        assert c.remote_gets == 1 and c.remote_puts == 1
        assert c.remote_acc_int == 3 and c.remote_acc_float == 1
        assert c.flushes == 1
        assert c.remote_bytes == (4 + 2 + 3 + 1) * 8

    def test_time_advances_by_slowest(self):
        rt = make_dm(10, P=2)

        def body(p):
            if p == 1:
                for _ in range(5):
                    rt.send(0, None, nbytes=0)

        before = rt.time
        rt.superstep(body)
        expected = 5 * rt.machine.net_alpha + rt.machine.w_barrier
        assert rt.time - before == pytest.approx(expected)

    def test_payload_byte_inference(self):
        assert DMRuntime._payload_bytes(None) == 0
        assert DMRuntime._payload_bytes(b"abc") == 3
        assert DMRuntime._payload_bytes([1, 2]) == 16
        assert DMRuntime._payload_bytes(np.zeros(3, dtype=np.float32)) == 12
        assert DMRuntime._payload_bytes(7) == 8


class TestDMPrimitives:
    """Satellite coverage: the runtime primitives themselves."""

    def test_mailbox_preserves_send_order(self):
        rt = make_dm(10, P=2)

        def sender(p):
            if p == 0:
                for i in range(3):
                    rt.send(1, i)

        rt.superstep(sender)
        got = {}
        rt.superstep(lambda p: got.update({p: rt.inbox()}))
        assert got[1] == [(0, 0), (0, 1), (0, 2)]
        assert got[0] == []

    def test_inbox_tag_filtering_leaves_other_tags(self):
        rt = make_dm(10, P=2)

        def sender(p):
            if p == 0:
                rt.send(1, "a", tag="x")
                rt.send(1, "b", tag="y")
                rt.send(1, "c", tag="x")

        rt.superstep(sender)
        got = {}

        def reader(p):
            if p == 1:
                got["x"] = rt.inbox("x")
                got["rest"] = rt.inbox()

        rt.superstep(reader)
        assert got["x"] == [(0, "a"), (0, "c")]
        assert got["rest"] == [(0, "b")]

    def test_alltoallv_payload_byte_accounting(self):
        rt = make_dm(10, P=2)
        row0 = [np.zeros(2), np.zeros(3)]   # p0 sends 16 + 24 bytes
        row1 = [None, np.zeros(1)]          # p1 sends 0 + 8 bytes
        rt.alltoallv([row0, row1])
        # each process pays its sent bytes plus its received bytes
        assert rt.proc_counters[0].collective_bytes == (16 + 24) + (16 + 0)
        assert rt.proc_counters[1].collective_bytes == (0 + 8) + (24 + 8)

    def test_accumulate_float_slower_than_int(self):
        """Section 6.5: float accumulate locks, int FAA is the HW path."""
        times = {}
        for dtype in ("int", "float"):
            rt = make_dm(10, P=2)
            rt.superstep(lambda p: (rt.rma_accumulate(1 - p, 8, dtype=dtype),
                                    rt.rma_flush()))
            times[dtype] = rt.time
        assert times["float"] > times["int"]

    def test_local_accumulate_books_processor_atomics(self):
        rt = make_dm(10, P=2)
        rt.superstep(lambda p: (rt.rma_accumulate(p, 4, dtype="int"),
                                rt.rma_accumulate(p, 2, dtype="float")))
        c = rt.proc_counters[0]
        assert c.remote_acc_int == 0 and c.remote_acc_float == 0
        assert c.faa == 4 and c.cas == 2 and c.atomics == 6

    def test_reset_clears_time_counters_and_mailboxes(self):
        rt = make_dm(10, P=2)
        rt.superstep(lambda p: rt.send(1 - p, "x"))
        assert rt.superstep_index == 1 and rt.time > 0
        rt.reset()
        assert rt.superstep_index == 0 and rt.time == 0
        assert all(c.messages == 0 and c.msg_bytes == 0 and c.barriers == 0
                   for c in rt.proc_counters)
        got = {}
        rt.superstep(lambda p: got.update({p: rt.inbox()}))
        assert got == {0: [], 1: []}

    def test_reset_rebinds_memory_accounting_to_process_zero(self):
        """The counter-rebinding bug class SMRuntime.reset fixed: without
        the rebind, post-reset events land on whichever process ran
        last."""
        rt = make_dm(10, P=2)
        h = rt.mem.register("x", 10, 8)
        rt.superstep(lambda p: None)     # leaves accounting bound to p1
        rt.reset()
        rt.mem.read(h, count=4)
        assert rt.proc_counters[0].reads > 0
        assert rt.proc_counters[1].reads == 0


class TestDMPageRank:
    @pytest.mark.parametrize("variant", ["mp", "rma-push", "rma-pull"])
    def test_matches_reference(self, comm_graph, variant):
        ref = pagerank_reference(comm_graph, 5)
        rt = make_dm(comm_graph.n)
        r = dm_pagerank(comm_graph, rt, variant=variant, iterations=5)
        assert np.allclose(r.ranks, ref, atol=1e-12)

    def test_variant_validation(self, comm_graph):
        rt = make_dm(comm_graph.n)
        with pytest.raises(ValueError):
            dm_pagerank(comm_graph, rt, variant="smoke-signals")

    def test_mp_fastest_push_slowest(self, comm_graph):
        times = {}
        for v in ("mp", "rma-push", "rma-pull"):
            rt = make_dm(comm_graph.n)
            times[v] = dm_pagerank(comm_graph, rt, variant=v,
                                   iterations=3).time
        assert times["mp"] < times["rma-pull"] < times["rma-push"]

    def test_event_asymmetries(self, comm_graph):
        rt = make_dm(comm_graph.n)
        push = dm_pagerank(comm_graph, rt, variant="rma-push", iterations=2)
        rt = make_dm(comm_graph.n)
        pull = dm_pagerank(comm_graph, rt, variant="rma-pull", iterations=2)
        rt = make_dm(comm_graph.n)
        mp = dm_pagerank(comm_graph, rt, variant="mp", iterations=2)
        assert push.counters.remote_acc_float > 0
        assert pull.counters.remote_acc_float == 0
        assert pull.counters.remote_gets > 0
        assert mp.counters.collectives > 0
        assert mp.counters.remote_gets == 0

    def test_mp_buffer_memory_comparison(self, comm_graph):
        """Section 6.3.1: RMA uses O(1) extra storage, MP up to O(n·d̂/P)."""
        rt = make_dm(comm_graph.n)
        mp = dm_pagerank(comm_graph, rt, variant="mp", iterations=2)
        rt = make_dm(comm_graph.n)
        rma = dm_pagerank(comm_graph, rt, variant="rma-pull", iterations=2)
        assert mp.peak_buffer_cells > 100 * rma.peak_buffer_cells


class TestDMTriangleCount:
    @pytest.mark.parametrize("variant", ["mp", "rma-push", "rma-pull"])
    def test_matches_reference(self, pa_graph, variant):
        ref = triangle_per_vertex_reference(pa_graph)
        rt = make_dm(pa_graph.n)
        r = dm_triangle_count(pa_graph, rt, variant=variant)
        assert np.array_equal(r.per_vertex, ref)

    def test_rma_beats_mp_and_pull_beats_push(self, pa_graph):
        times = {}
        for v in ("mp", "rma-push", "rma-pull"):
            rt = make_dm(pa_graph.n)
            times[v] = dm_triangle_count(pa_graph, rt, variant=v).time
        assert times["rma-pull"] <= times["rma-push"] < times["mp"]

    def test_int_faa_fast_path_used(self, pa_graph):
        rt = make_dm(pa_graph.n)
        r = dm_triangle_count(pa_graph, rt, variant="rma-push")
        assert r.counters.remote_acc_int > 0
        assert r.counters.remote_acc_float == 0

    def test_mp_buffering_reduces_messages(self, comm_graph):
        rt = make_dm(comm_graph.n)
        few = dm_triangle_count(comm_graph, rt, variant="mp",
                                buffer_items=10**9)
        rt = make_dm(comm_graph.n)
        many = dm_triangle_count(comm_graph, rt, variant="mp",
                                 buffer_items=1)
        assert few.counters.messages < many.counters.messages

    def test_variant_validation(self, pa_graph):
        rt = make_dm(pa_graph.n)
        with pytest.raises(ValueError):
            dm_triangle_count(pa_graph, rt, variant="carrier-pigeon")
