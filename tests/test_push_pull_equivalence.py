"""Push and pull variants must compute the same answer (Section 3).

Every pair runs on a small Erdős–Rényi and a small Kronecker (R-MAT)
instance through the race-checking runtime factory, so these tests
double as a no-undeclared-conflict regression for both directions.

"Same answer" is per-algorithm: exact equality for integer outputs
(BFS levels, triangle counts), floating tolerance for accumulations
(PR, SSSP, BC, MST weight), and semantic equivalence for coloring
(both proper; the palettes may differ).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import (
    betweenness_centrality, bfs, boman_coloring, boruvka_mst,
    connected_components, pagerank, sssp_delta, triangle_count,
)
from repro.algorithms.reference import is_proper_coloring, mst_weight_reference
from repro.generators import erdos_renyi, rmat


def _plain_graphs():
    return [
        pytest.param(erdos_renyi(150, d_bar=4.0, seed=7), id="er"),
        pytest.param(rmat(7, d_bar=6.0, seed=13), id="kron"),
    ]


def _weighted_graphs():
    return [
        pytest.param(erdos_renyi(120, d_bar=4.0, seed=11, weighted=True),
                     id="er-w"),
        pytest.param(rmat(7, d_bar=5.0, seed=17, weighted=True), id="kron-w"),
    ]


@pytest.mark.parametrize("g", _plain_graphs())
class TestUnweighted:
    def test_pagerank(self, g, race_rt_factory):
        push = pagerank(g, race_rt_factory(g), direction="push", iterations=10)
        pull = pagerank(g, race_rt_factory(g), direction="pull", iterations=10)
        assert np.allclose(push.ranks, pull.ranks)

    def test_bfs(self, g, race_rt_factory):
        push = bfs(g, race_rt_factory(g), root=0, direction="push")
        pull = bfs(g, race_rt_factory(g), root=0, direction="pull")
        assert np.array_equal(push.level, pull.level)

    def test_triangle_count(self, g, race_rt_factory):
        push = triangle_count(g, race_rt_factory(g), direction="push")
        pull = triangle_count(g, race_rt_factory(g), direction="pull")
        assert np.array_equal(push.per_vertex, pull.per_vertex)

    def test_betweenness_centrality(self, g, race_rt_factory):
        sources = [0, 3, 11, 29]
        push = betweenness_centrality(g, race_rt_factory(g), direction="push",
                                      sources=sources)
        pull = betweenness_centrality(g, race_rt_factory(g), direction="pull",
                                      sources=sources)
        assert np.allclose(push.bc, pull.bc)

    def test_coloring(self, g, race_rt_factory):
        push = boman_coloring(g, race_rt_factory(g), direction="push")
        pull = boman_coloring(g, race_rt_factory(g), direction="pull")
        assert is_proper_coloring(g, push.colors)
        assert is_proper_coloring(g, pull.colors)


@pytest.mark.parametrize("g", _weighted_graphs())
class TestWeighted:
    def test_sssp_delta(self, g, race_rt_factory):
        push = sssp_delta(g, race_rt_factory(g), source=0, direction="push")
        pull = sssp_delta(g, race_rt_factory(g), source=0, direction="pull")
        assert np.allclose(push.dist, pull.dist, equal_nan=True)

    def test_boruvka_mst(self, g, race_rt_factory):
        push = boruvka_mst(g, race_rt_factory(g), direction="push")
        pull = boruvka_mst(g, race_rt_factory(g), direction="pull")
        assert push.total_weight == pytest.approx(pull.total_weight)
        assert push.total_weight == pytest.approx(mst_weight_reference(g))


@pytest.mark.parametrize("direction", ["push", "pull"])
@pytest.mark.parametrize("g", _plain_graphs())
class TestBatched:
    """Batched stream kernels vs their interpreted originals, under the
    race-checking runtime.

    The race detector wraps the counting memory in a proxy, which is
    exactly what pushes :class:`repro.streams.StreamMemory` onto its
    element-at-a-time oracle path -- so these runs certify both that the
    batched kernels compute identical answers *and* that their declared
    atomics/covers keep the conflict report clean in both directions.
    """

    def test_pagerank(self, g, direction, race_rt_factory):
        from repro.streams.kernels import pagerank_batched
        ref = pagerank(g, race_rt_factory(g), direction=direction,
                       iterations=10)
        got = pagerank_batched(g, race_rt_factory(g), direction=direction,
                               iterations=10)
        assert np.array_equal(ref.ranks, got.ranks)
        assert got.iterations == ref.iterations

    def test_bfs(self, g, direction, race_rt_factory):
        from repro.streams.kernels import bfs_batched
        ref = bfs(g, race_rt_factory(g), root=0, direction=direction)
        got = bfs_batched(g, race_rt_factory(g), root=0, direction=direction)
        assert np.array_equal(ref.level, got.level)
        assert np.array_equal(ref.parent, got.parent)
        assert got.frontier_sizes == ref.frontier_sizes

    def test_cc(self, g, direction, race_rt_factory):
        from repro.streams.kernels import cc_batched
        ref = connected_components(g, race_rt_factory(g),
                                   direction=direction)
        got = cc_batched(g, race_rt_factory(g), direction=direction)
        assert np.array_equal(ref.labels, got.labels)
        assert got.n_components == ref.n_components
        assert got.rounds == ref.rounds


@pytest.mark.parametrize("direction", ["push", "pull"])
@pytest.mark.parametrize("g", _weighted_graphs())
class TestBatchedWeighted:
    def test_sssp_delta(self, g, direction, race_rt_factory):
        from repro.streams.kernels import sssp_delta_batched
        ref = sssp_delta(g, race_rt_factory(g), source=0,
                         direction=direction)
        got = sssp_delta_batched(g, race_rt_factory(g), source=0,
                                 direction=direction)
        assert np.array_equal(ref.dist, got.dist)
        assert got.epochs == ref.epochs
