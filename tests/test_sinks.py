"""Differential suite for the pluggable trace sinks.

The contract under test: every bounded-memory sink must be *provably*
equivalent to the buffered post-hoc path on the surface it claims --
the RollupSink's incremental ``repro-metrics/3`` document serializes
to the same bytes as :func:`metrics_rollup` over a full buffer
(including the traffic matrix and the critical path summing to run
time), the streaming JSONL file equals the post-hoc export, and the
sampling sink is deterministic under a fixed seed.  The same per-cell
rollup assertion also runs inside the bench harness, so the committed
baselines re-certify it in CI (tests/test_trace_cli.py regenerates the
full sweep).
"""

import json

import pytest

from repro.observability.driver import run_traced
from repro.observability.export import (
    _dumps, chrome_trace, metrics_rollup, to_jsonl_lines, write_outputs,
)
from repro.observability.flame import folded_stacks
from repro.observability.sinks import (
    BufferSink, JsonlStreamSink, RollupSink, SamplingSink, format_bytes,
)

#: the committed baseline-family grid plus the shapes it cannot cover:
#: SM faults (injected stalls), DM faults (recovery stalls), the
#: switching strategy (frontier/switch events), and the batched engine
CELLS = [
    dict(algorithm="pagerank", variant="push"),
    dict(algorithm="pagerank", variant="pull"),
    dict(algorithm="pagerank", variant="push", dm=True),
    dict(algorithm="pagerank", variant="pull", dm=True),
    dict(algorithm="bfs", variant="push"),
    dict(algorithm="bfs", variant="pull", dm=True),
    dict(algorithm="bfs", variant="switching"),
    dict(algorithm="bfs", variant="push", dm=True, faults=True),
    dict(algorithm="sssp", variant="push", faults=True),
    dict(algorithm="sssp", variant="pull"),
    dict(algorithm="cc", variant="pull", engine="batched"),
    dict(algorithm="pagerank", variant="push", engine="batched"),
]


def _ids(cell):
    return "-".join(f"{k}={v}" for k, v in cell.items())


class TestRollupSinkDifferential:
    @pytest.mark.parametrize("cell", CELLS, ids=_ids)
    def test_incremental_rollup_serializes_identically(self, cell):
        roll = RollupSink()
        _rt, tracer, _res, _ = run_traced(sinks=[BufferSink(), roll], **cell)
        assert _dumps(roll.rollup()) == _dumps(metrics_rollup(tracer))

    @pytest.mark.parametrize("cell", CELLS, ids=_ids)
    def test_rollup_only_reconciles_without_events(self, cell):
        _rt, tracer, _res, _ = run_traced(sinks=[RollupSink()], **cell)
        traced, actual = tracer.reconcile()
        assert traced.to_dict() == actual.to_dict()
        crit = tracer.critical_totals()
        assert crit["reconciled"]
        with pytest.raises(AttributeError, match="no BufferSink"):
            tracer.events

    def test_traffic_matrix_reconciles_against_counters(self):
        roll = RollupSink()
        _rt, tracer, _res, _ = run_traced(
            "pagerank", variant="pull", dm=True, sinks=[roll])
        totals = tracer.traced_totals()
        for field, count in roll.traffic()["totals"].items():
            assert count == getattr(totals, field)

    def test_critical_path_sums_to_run_time(self):
        roll = RollupSink()
        rt, tracer, _res, _ = run_traced(
            "bfs", variant="push", dm=True, faults=True, sinks=[roll])
        crit = roll.critical()["totals"]
        on_path = (crit["compute"] + crit["comm"] + crit["injected_stall"]
                   + crit["sync"] + crit["recovery_stall"])
        assert on_path == pytest.approx(rt.time - tracer.start_time,
                                        rel=1e-9)

    def test_bounded_memory_on_large_batched_run(self):
        """The acceptance cell: a traced --engine batched run at
        n >= 100,000 completes with the rollup's retained state far
        below the buffer's, and reconciles exactly."""
        roll = RollupSink()
        rt, tracer, _res, _ = run_traced(
            "pagerank", variant="push", n=100_000, iterations=2,
            cache_scale=0, engine="batched", sinks=[roll])
        traced, actual = tracer.reconcile()
        assert traced.to_dict() == actual.to_dict()
        assert tracer.critical_totals()["reconciled"]
        assert tracer.peak_sink_bytes > 0

    def test_rollup_peak_below_buffer_peak_on_event_heavy_run(self):
        # a DM run emits per-verb events the rollup folds away
        config = dict(algorithm="pagerank", variant="pull", dm=True,
                      n=960, cache_scale=0)
        _rt, t_roll, _res, _ = run_traced(sinks=[RollupSink()], **config)
        _rt, t_buf, _res, _ = run_traced(sinks=[BufferSink()], **config)
        assert t_roll.peak_sink_bytes < t_buf.peak_sink_bytes / 3


class TestJsonlStreamSink:
    def test_stream_file_equals_post_hoc_export(self, tmp_path):
        path = tmp_path / "events.jsonl"
        _rt, tracer, _res, _ = run_traced(
            "pagerank", variant="pull", dm=True,
            sinks=[JsonlStreamSink(str(path))])
        tracer.close()
        _rt, buffered, _res, _ = run_traced("pagerank", variant="pull",
                                            dm=True)
        assert path.read_text() == "\n".join(to_jsonl_lines(buffered)) + "\n"

    def test_emit_after_close_fails_loudly(self, tmp_path):
        path = tmp_path / "events.jsonl"
        _rt, tracer, _res, _ = run_traced(
            "pagerank", variant="push", sinks=[JsonlStreamSink(str(path))])
        tracer.close()
        with pytest.raises(RuntimeError, match="after close"):
            tracer._emit("barrier", ts=0.0)

    def test_write_outputs_returns_streamed_path(self, tmp_path):
        path = tmp_path / "events.jsonl"
        _rt, tracer, _res, _ = run_traced(
            "pagerank", variant="push",
            sinks=[JsonlStreamSink(str(path)), RollupSink()])
        paths = write_outputs(tracer, str(tmp_path))
        assert paths["jsonl"] == str(path)
        assert "chrome" not in paths  # nothing retains the spans
        metrics = json.loads((tmp_path / "metrics.json").read_text())
        assert metrics["schema"] == "repro-metrics/3"


class TestSamplingSink:
    CONFIG = dict(algorithm="pagerank", variant="push", n=960,
                  cache_scale=0)

    def test_deterministic_under_fixed_seed(self):
        samples = []
        for _ in range(2):
            sink = SamplingSink(max_events=16, seed=11)
            run_traced(sinks=[sink], **self.CONFIG)
            samples.append([ev.seq for ev in sink.retained()])
        assert samples[0] == samples[1]
        assert 0 < len(samples[0]) <= 16

    def test_chrome_and_flame_exports_deterministic(self, tmp_path):
        docs = []
        for _ in range(2):
            sink = SamplingSink(max_events=16, seed=11)
            _rt, tracer, _res, _ = run_traced(sinks=[sink], **self.CONFIG)
            view = sink.view()
            docs.append((_dumps(chrome_trace(view)),
                         "\n".join(folded_stacks(view))))
        assert docs[0] == docs[1]

    def test_different_seed_different_sample(self):
        retained = []
        for seed in (0, 1):
            sink = SamplingSink(max_events=16, seed=seed)
            run_traced(sinks=[sink], **self.CONFIG)
            retained.append([ev.seq for ev in sink.retained()])
        assert retained[0] != retained[1]

    def test_sampled_meta_marks_the_export(self):
        sink = SamplingSink(max_events=8, seed=0)
        run_traced(sinks=[sink], **self.CONFIG)
        meta = sink.view().meta()
        sampled = meta["sampled"]
        assert sampled["retained"] <= 8
        assert sampled["spans_seen"] >= sampled["retained"]
        assert sampled["seed"] == 0

    def test_exact_counters_survive_sampling(self):
        sink = SamplingSink(max_events=4, seed=0)
        _rt, tracer, _res, _ = run_traced(sinks=[sink], **self.CONFIG)
        traced, actual = tracer.reconcile()
        assert traced.to_dict() == actual.to_dict()
        assert sink.spans_seen > 4  # spans were actually dropped


class TestSinkReset:
    def test_reset_rearms_every_sink(self, tmp_path):
        """rt.reset() -> Tracer.on_reset() must clear the buffer, zero
        the rollup, truncate + re-header the streaming file, and leave
        a second run fully reconcilable through every sink."""
        from repro.analysis.runner import instance_graph
        from repro.observability.tracer import attach_tracer
        from repro.runtime.sm import SMRuntime

        g = instance_graph("er", 96, d_bar=4.0, seed=7, weighted=False)
        rt = SMRuntime(g, 4)
        path = tmp_path / "events.jsonl"
        buf, roll = BufferSink(), RollupSink()
        stream = JsonlStreamSink(str(path))
        tracer = attach_tracer(rt, graph=g, sinks=[buf, roll, stream])

        from repro.algorithms.pagerank import pagerank
        pagerank(g, rt, direction="push", iterations=2)
        first = _dumps(metrics_rollup(tracer))
        assert buf.events and sum(roll.traced_totals().to_dict().values()) > 0
        peak_before = tracer.peak_sink_bytes

        rt.reset()
        assert buf.events == []
        assert buf.nbytes == 0
        assert sum(roll.traced_totals().to_dict().values()) == 0
        assert roll.rollup()["steps"] == []
        assert tracer.n_events == 0 and tracer.kind_counts == {}
        assert tracer.peak_sink_bytes == peak_before  # high-water mark
        # the stream file was truncated back to just the header line
        stream.close()
        assert path.read_text() == _dumps(tracer.meta()) + "\n"
        stream._open()

        pagerank(g, rt, direction="push", iterations=2)
        traced, actual = tracer.reconcile()
        assert traced.to_dict() == actual.to_dict()
        assert _dumps(roll.rollup()) == _dumps(metrics_rollup(tracer))
        assert _dumps(metrics_rollup(tracer)) == first  # same run, same doc
        tracer.close()
        assert path.read_text() == "\n".join(to_jsonl_lines(tracer)) + "\n"

    def test_sampler_reset_restores_determinism(self):
        from repro.analysis.runner import instance_graph
        from repro.observability.tracer import attach_tracer
        from repro.runtime.sm import SMRuntime

        g = instance_graph("er", 200, d_bar=4.0, seed=7, weighted=False)
        rt = SMRuntime(g, 4)
        sink = SamplingSink(max_events=8, seed=5)
        attach_tracer(rt, graph=g, sinks=[sink])

        from repro.algorithms.pagerank import pagerank
        pagerank(g, rt, direction="pull", iterations=3)
        first = [ev.seq for ev in sink.retained()]
        rt.reset()
        assert sink.retained() == []
        pagerank(g, rt, direction="pull", iterations=3)
        assert [ev.seq for ev in sink.retained()] == first


class TestBufferDefault:
    def test_default_tracer_is_buffered(self):
        _rt, tracer, _res, _ = run_traced("pagerank", variant="push")
        assert [s.name for s in tracer.sinks] == ["buffer"]
        assert len(tracer.events) == tracer.n_events
        assert tracer.peak_sink_bytes == tracer.sinks[0].peak_nbytes

    def test_kind_counts_match_events(self):
        _rt, tracer, _res, _ = run_traced("bfs", variant="switching")
        kinds = {}
        for ev in tracer.events:
            kinds[ev.kind] = kinds.get(ev.kind, 0) + 1
        assert tracer.kind_counts == kinds


def test_format_bytes():
    assert format_bytes(512) == "512 B"
    assert format_bytes(4096) == "4.0 KiB"
    assert format_bytes(3 * 1024 * 1024) == "3.0 MiB"
    assert format_bytes(5 * 1024 ** 3) == "5.0 GiB"
