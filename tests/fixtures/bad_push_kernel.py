"""A deliberately broken push kernel -- the analysis tests' crash dummy.

The kernel scatters into every neighbor's accumulator with a plain
store and never declares an atomic, violating the Section-3.8 push
contract two ways:

* statically, the lint pass must flag the raw remote store (ANL002);
* dynamically, the race detector must report write-write races on
  ``broken.acc`` when two threads share a neighbor.

Kept under ``tests/fixtures/`` so the shipped ``repro.algorithms``
package stays lint-clean.
"""

from __future__ import annotations

import numpy as np


def broken_push_accumulate(g, rt) -> np.ndarray:
    """Push +1 into every neighbor of every vertex -- sans atomics."""
    mem = rt.mem
    acc = np.zeros(g.n)
    acc_h = mem.register("broken.acc", acc)

    def push_body(t: int, vs: np.ndarray) -> None:
        for v in vs:
            nbrs = g.adj[g.offsets[v]:g.offsets[v + 1]]
            if len(nbrs) == 0:
                continue
            acc[nbrs] += 1.0
            # BUG: a remote scatter declared as a plain write; the push
            # contract requires cas/faa/lock here
            mem.write(acc_h, idx=nbrs, mode="rand")

    rt.for_each_thread(push_body)
    return acc
