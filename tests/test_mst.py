"""Correctness + instrumentation tests for Borůvka MST."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import networkx as nx

from repro.algorithms.mst_boruvka import boruvka_mst
from repro.algorithms.reference import mst_weight_reference
from repro.generators import erdos_renyi
from repro.graph import from_edges, to_networkx
from tests.conftest import make_runtime

DIRECTIONS = ("push", "pull")


@pytest.mark.parametrize("direction", DIRECTIONS)
class TestCorrectness:
    def test_weight_matches_kruskal(self, er_weighted, direction):
        ref = mst_weight_reference(er_weighted)
        rt = make_runtime(er_weighted)
        r = boruvka_mst(er_weighted, rt, direction=direction)
        assert r.total_weight == pytest.approx(ref)

    def test_weight_matches_networkx(self, road_graph, direction):
        rt = make_runtime(road_graph)
        r = boruvka_mst(road_graph, rt, direction=direction)
        nxmst = nx.minimum_spanning_tree(to_networkx(road_graph))
        assert r.total_weight == pytest.approx(
            nxmst.size(weight="weight"))

    def test_forest_edge_count(self, er_weighted, direction):
        rt = make_runtime(er_weighted)
        r = boruvka_mst(er_weighted, rt, direction=direction)
        n_components = nx.number_connected_components(
            to_networkx(er_weighted))
        assert len(r.edges) == er_weighted.n - n_components

    def test_edges_form_acyclic_subgraph(self, er_weighted, direction):
        rt = make_runtime(er_weighted)
        r = boruvka_mst(er_weighted, rt, direction=direction)
        f = nx.Graph(r.edges)
        assert nx.is_forest(f)
        for v, w in r.edges:
            assert er_weighted.has_edge(v, w)

    def test_unweighted_spanning_tree(self, comm_graph, direction):
        rt = make_runtime(comm_graph)
        r = boruvka_mst(comm_graph, rt, direction=direction)
        assert r.total_weight == pytest.approx(len(r.edges))

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_random_weighted_graphs(self, direction, seed):
        g = erdos_renyi(50, d_bar=3.0, seed=seed, weighted=True)
        ref = mst_weight_reference(g)
        rt = make_runtime(g)
        r = boruvka_mst(g, rt, direction=direction)
        assert r.total_weight == pytest.approx(ref)

    def test_duplicate_weights_consistent(self, direction):
        """All weights equal: any spanning tree has the same weight, and
        the endpoint-symmetric tie-break must not create cycles."""
        g = from_edges(10, [(i, j) for i in range(10) for j in range(i + 1, 10)],
                       weights=[1.0] * 45)
        rt = make_runtime(g)
        r = boruvka_mst(g, rt, direction=direction)
        assert r.total_weight == pytest.approx(9.0)
        assert nx.is_tree(nx.Graph(r.edges))


class TestPhases:
    def test_phase_times_recorded(self, er_weighted):
        rt = make_runtime(er_weighted)
        r = boruvka_mst(er_weighted, rt, direction="pull")
        assert set(r.phase_times) == {"FM", "BMT", "M"}
        assert len(r.phase_times["FM"]) == r.iterations

    def test_iterations_logarithmic(self, er_weighted):
        rt = make_runtime(er_weighted)
        r = boruvka_mst(er_weighted, rt, direction="pull")
        assert r.iterations <= int(np.log2(er_weighted.n)) + 2

    def test_push_slower_in_fm_faster_in_bmt(self, comm_graph):
        rts = [make_runtime(comm_graph) for _ in range(2)]
        push = boruvka_mst(comm_graph, rts[0], direction="push")
        pull = boruvka_mst(comm_graph, rts[1], direction="pull")
        assert sum(push.phase_times["FM"]) > sum(pull.phase_times["FM"])
        assert sum(push.phase_times["BMT"]) <= sum(pull.phase_times["BMT"])


class TestInstrumentation:
    def test_pull_zero_atomics(self, er_weighted):
        rt = make_runtime(er_weighted)
        r = boruvka_mst(er_weighted, rt, direction="pull")
        assert r.counters.atomics == 0

    def test_push_uses_cas(self, er_weighted):
        rt = make_runtime(er_weighted)
        r = boruvka_mst(er_weighted, rt, direction="push")
        assert r.counters.cas > 0


class TestEdgeCases:
    def test_single_edge(self):
        g = from_edges(2, [(0, 1)], weights=[2.5])
        rt = make_runtime(g, P=2)
        r = boruvka_mst(g, rt)
        assert r.edges == [(0, 1)] and r.total_weight == 2.5

    def test_all_isolated(self):
        g = from_edges(4, [])
        rt = make_runtime(g)
        r = boruvka_mst(g, rt)
        assert r.edges == [] and r.total_weight == 0.0

    def test_invalid_direction(self, tiny_weighted):
        rt = make_runtime(tiny_weighted)
        with pytest.raises(ValueError):
            boruvka_mst(tiny_weighted, rt, direction="down")
