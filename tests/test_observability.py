"""Tests for the unified trace/metrics layer (repro.observability).

Covers the ISSUE-4 acceptance surface: bit-identical JSONL exports
(including under fault plans), exact PerfCounters reconciliation
between region/superstep deltas and run totals, Chrome trace-event
structural validity (matched B/E pairs, monotonic per-lane
timestamps), the metrics rollup, the Profile fold, and the
import-lightness of the runtime/observability modules -- plus the
ISSUE-5 surface: cache-counter attribution (span deltas carry
L1/L2/L3/TLB miss columns that reconcile exactly and expose the
push-vs-pull miss asymmetry), the partition edge-cut in the rollup
cross-checked against the cut-based communication bounds, and the
exporter edge cases (empty traces, zero-duration spans).
"""

from __future__ import annotations

import json
import math
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.observability import (
    SCHEMA, chrome_trace, metrics_rollup, to_jsonl_lines, write_outputs,
)
from repro.observability.driver import run_traced

SRC = str(Path(__file__).parent.parent / "src")


def _trace(algorithm="pagerank", **kw):
    _rt, tracer, _resolved, _result = run_traced(algorithm, **kw)
    return tracer


class TestDeterminism:
    def test_sm_jsonl_bit_identical(self):
        a = to_jsonl_lines(_trace("pagerank", variant="push"))
        b = to_jsonl_lines(_trace("pagerank", variant="push"))
        assert a == b

    def test_dm_fault_jsonl_bit_identical(self):
        kw = dict(variant="push", dm=True, faults=True)
        a = to_jsonl_lines(_trace("pagerank", **kw))
        b = to_jsonl_lines(_trace("pagerank", **kw))
        assert a == b
        # the fault plan must actually have fired for this to mean much
        assert any('"kind":"recovery"' in line or '"kind":"fault"' in line
                   for line in a)

    def test_chrome_and_metrics_deterministic(self):
        t1 = _trace("bfs", variant="switching")
        t2 = _trace("bfs", variant="switching")
        dumps = lambda o: json.dumps(o, sort_keys=True)  # noqa: E731
        assert dumps(chrome_trace(t1)) == dumps(chrome_trace(t2))
        assert dumps(metrics_rollup(t1)) == dumps(metrics_rollup(t2))

    def test_written_files_identical_across_runs(self, tmp_path):
        p1 = write_outputs(_trace("sssp", variant="pull", dm=True),
                           str(tmp_path / "a"))
        p2 = write_outputs(_trace("sssp", variant="pull", dm=True),
                           str(tmp_path / "b"))
        for key in ("jsonl", "chrome", "metrics"):
            assert Path(p1[key]).read_bytes() == Path(p2[key]).read_bytes()


class TestReconciliation:
    """Σ region/superstep deltas + barrier events == run totals, exactly."""

    @pytest.mark.parametrize("algorithm,kw", [
        ("pagerank", dict(variant="push")),
        ("pagerank", dict(variant="pull")),
        ("bfs", dict(variant="switching")),
        ("sssp", dict(variant="push")),
        ("pagerank", dict(variant="pull", dm=True)),
        ("bfs", dict(variant="push", dm=True)),
        ("sssp", dict(variant="push", dm=True)),
        ("pagerank", dict(variant="push", dm=True, faults=True)),
        ("bfs", dict(variant="switching", dm=True, faults=True)),
    ])
    def test_traced_totals_match_run_totals(self, algorithm, kw):
        tracer = _trace(algorithm, **kw)
        traced, actual = tracer.reconcile()
        assert traced.to_dict() == actual.to_dict()

    def test_totals_are_nonzero(self):
        traced, actual = _trace("pagerank", variant="push").reconcile()
        assert any(v for v in actual.to_dict().values())


class TestChromeTrace:
    def _events(self, **kw):
        return chrome_trace(_trace(**kw))["traceEvents"]

    @pytest.mark.parametrize("kw", [
        dict(algorithm="pagerank", variant="push"),
        dict(algorithm="pagerank", variant="push", dm=True, faults=True),
    ])
    def test_b_e_pairs_match_per_lane(self, kw):
        stacks: dict[int, list[str]] = {}
        for ev in self._events(**kw):
            if ev["ph"] == "B":
                stacks.setdefault(ev["tid"], []).append(ev["name"])
            elif ev["ph"] == "E":
                assert stacks.get(ev["tid"]), f"E without B on {ev['tid']}"
                assert stacks[ev["tid"]].pop() == ev["name"]
        assert all(not s for s in stacks.values()), "unclosed B events"

    def test_timestamps_valid_for_importer(self):
        # trace importers (Perfetto) sort by ts, so file order is free;
        # what must hold is E.ts >= B.ts for every pair and nothing
        # before the epoch
        opens: dict[int, list[float]] = {}
        for ev in self._events(algorithm="pagerank", variant="push",
                               dm=True, faults=True):
            if "ts" in ev:
                assert ev["ts"] >= 0.0
            if ev["ph"] == "B":
                opens.setdefault(ev["tid"], []).append(ev["ts"])
            elif ev["ph"] == "E":
                assert ev["ts"] >= opens[ev["tid"]].pop()

    def test_runtime_lane_is_monotonic(self):
        # the runtime lane (barriers / supersteps / global instants) is
        # emitted in simulated-time order even in file order
        evs = self._events(algorithm="pagerank", variant="push", dm=True)
        P = 4
        last = 0.0
        for ev in evs:
            if ev.get("tid") == P and "ts" in ev and ev["ph"] != "E":
                assert ev["ts"] >= last
                last = ev["ts"]

    def test_one_lane_per_rank_plus_runtime(self):
        evs = self._events(algorithm="pagerank", variant="push", dm=True,
                           P=4)
        names = {ev["args"]["name"] for ev in evs
                 if ev["ph"] == "M" and ev["name"] == "thread_name"}
        assert names == {"rank 0", "rank 1", "rank 2", "rank 3", "runtime"}

    def test_frontier_counter_track(self):
        evs = self._events(algorithm="bfs", variant="push")
        counters = [ev for ev in evs if ev["ph"] == "C"]
        assert counters and all(ev["name"] == "frontier-size"
                                for ev in counters)


class TestEventContent:
    def test_jsonl_header_carries_schema(self):
        lines = to_jsonl_lines(_trace("pagerank", variant="push"))
        head = json.loads(lines[0])
        assert head["schema"] == SCHEMA
        assert head["runtime"] == "sm" and head["P"] == 4

    def test_switch_events_carry_operands(self):
        tracer = _trace("bfs", variant="switching")
        switches = [ev for ev in tracer.events if ev.kind == "switch"]
        assert switches, "direction-optimizing BFS must log its decisions"
        for ev in switches:
            assert "frontier_edges" in ev.data and "alpha" in ev.data
            assert ev.data["chosen"] in ("push", "pull")

    def test_frontier_events_carry_density(self):
        tracer = _trace("bfs", variant="push")
        fronts = [ev for ev in tracer.events if ev.kind == "frontier"]
        assert fronts
        for ev in fronts:
            assert 0.0 <= ev.data["density"] <= 1.0

    def test_regions_are_phase_annotated(self):
        tracer = _trace("pagerank", variant="pull")
        labels = {ev.label for ev in tracer.events if ev.kind == "region"}
        assert "pr.pull" in labels and "pr.finalize" in labels

    def test_dm_comm_verbs_recorded(self):
        tracer = _trace("pagerank", variant="push", dm=True)
        kinds = {ev.kind for ev in tracer.events}
        assert "rma" in kinds and "flush" in kinds

    def test_recovery_events_land_on_injected_lane(self):
        tracer = _trace("pagerank", variant="push", dm=True, faults=True)
        recov = [ev for ev in tracer.events if ev.kind == "recovery"]
        assert recov, "the default chaos plan must trigger recovery"
        P = tracer.rt.P
        assert all(ev.lane is None or 0 <= ev.lane < P for ev in recov)
        assert any(ev.lane is not None for ev in recov)

    def test_sm_faults_traced_and_reconciled(self):
        # PR 8: --faults without --dm attaches the SM injector; fault
        # events land in the trace and reconciliation still holds
        rt, tracer, _variant, _result = run_traced("bfs", variant="push",
                                                   faults=True)
        kinds = {ev.kind for ev in tracer.events}
        assert "fault" in kinds
        traced, actual = tracer.reconcile()
        assert traced.to_dict() == actual.to_dict()


class TestMetricsRollup:
    def test_series_sum_to_step_counters(self):
        roll = metrics_rollup(_trace("pagerank", variant="push"))
        for name, values in roll["series"].items():
            total = sum(s["counters"].get(name, 0) for s in roll["steps"])
            assert sum(values) == total

    def test_step_times_bounded_by_run_time(self):
        roll = metrics_rollup(_trace("pagerank", variant="push", dm=True))
        assert sum(s["time"] for s in roll["steps"]) <= roll["time_mtu"]


class TestCacheCounters:
    """Spans carry cache/TLB miss deltas (the paper's Table 1 columns)."""

    def test_span_deltas_carry_cache_misses(self):
        tracer = _trace("pagerank", variant="pull")
        deltas = [d for ev in tracer.events if ev.kind == "region"
                  for d in ev.data["deltas"]]
        assert any(d.get("l1_misses") for d in deltas)
        traced, actual = tracer.reconcile()
        assert traced.to_dict() == actual.to_dict()
        assert actual.l1_misses > 0 and actual.tlb_d_misses >= 0

    def test_dm_span_deltas_carry_cache_misses(self):
        tracer = _trace("pagerank", variant="pull", dm=True)
        deltas = [d for ev in tracer.events if ev.kind == "superstep"
                  for d in ev.data["deltas"]]
        assert any(d.get("l1_misses") for d in deltas)
        traced, actual = tracer.reconcile()
        assert traced.to_dict() == actual.to_dict()

    def test_push_pull_miss_asymmetry(self):
        from repro.observability import miss_asymmetry
        push = _trace("pagerank", variant="push").rt.total_counters()
        pull = _trace("pagerank", variant="pull").rt.total_counters()
        gap = miss_asymmetry(push.to_dict(), pull.to_dict())
        # PR pull gathers random neighbor ranks; push streams its own
        # adjacency -- pull must miss more per read (Section 6.1)
        assert gap["l1_misses"] > 0

    def test_cache_scale_zero_disables_simulation(self):
        tracer = _trace("pagerank", variant="pull", cache_scale=0)
        totals = tracer.rt.total_counters()
        assert totals.reads > 0 and totals.l1_misses == 0

    def test_rollup_cache_view_is_schema_complete(self):
        from repro.observability.hwcounters import TABLE1_COLUMNS
        roll = metrics_rollup(_trace("pagerank", variant="pull"))
        assert roll["schema"] == "repro-metrics/3"
        view = roll["cache"]
        assert view["columns"] == list(TABLE1_COLUMNS) + ["l1_per_read"]
        labels = {r["label"] for r in view["rows"]}
        assert "pr.pull" in labels
        for row in view["rows"]:
            assert all(k in row for k in view["columns"])

    def test_dm_ranks_have_private_l3(self, tiny_graph):
        from repro.machine.memory import CacheSimMemory
        from repro.observability.hwcounters import equip_cache_sim
        from repro.runtime.dm import DMRuntime
        from repro.runtime.sm import SMRuntime
        dm_mem = equip_cache_sim(DMRuntime(96, 4))
        assert isinstance(dm_mem, CacheSimMemory) and not dm_mem.shared_l3
        sm_mem = equip_cache_sim(SMRuntime(tiny_graph, P=4))
        assert isinstance(sm_mem, CacheSimMemory) and sm_mem.shared_l3


class TestEdgeCut:
    """rollup["cut"] agrees with the analysis layer's cut accounting."""

    def test_cut_matches_cross_edges(self):
        from repro.analysis.dm_runner import cross_edges
        tracer = _trace("pagerank", variant="push", dm=True)
        rt = tracer.rt
        roll = metrics_rollup(tracer)
        cut = roll["cut"]
        g = tracer_graph()
        assert cut["edges_cross"] == cross_edges(g, rt.part)
        assert sum(cut["per_lane_out"]) == cut["edges_cross"]
        assert 0.0 < cut["fraction"] <= 1.0

    def test_comm_bounded_by_cut(self):
        from repro.analysis.crosscheck import dm_crosscheck
        tracer = _trace("pagerank", variant="push", dm=True, iterations=5)
        roll = metrics_rollup(tracer)
        check = dm_crosscheck(
            "pagerank", "rma-push", tracer.rt.total_counters(),
            m_cross=roll["cut"]["edges_cross"], P=tracer.rt.P,
            supersteps=tracer.rt.superstep_index, rounds=5)
        assert check.ok, check

    def test_sm_trace_also_reports_cut(self):
        roll = metrics_rollup(_trace("pagerank", variant="push"))
        assert roll["cut"] is not None
        assert roll["cut"]["edges_total"] > roll["cut"]["edges_cross"] > 0


class TestCriticalPath:
    """rollup["critical_path"]: decomposition sums exactly to run time
    and per-lane busy/idle splits close against it (PR 9)."""

    @staticmethod
    def _crit(tracer):
        from repro.observability import critical_path
        return critical_path(tracer)

    def test_sm_decomposition_sums_to_run_time(self):
        crit = self._crit(_trace("pagerank", variant="pull"))
        t = crit["totals"]
        assert t["reconciled"]
        assert t["comm"] == 0.0  # SM pays no per-verb network charges
        assert t["compute"] > 0 and t["sync"] > 0
        on_path = (t["compute"] + t["comm"] + t["injected_stall"]
                   + t["sync"] + t["recovery_stall"])
        assert math.isclose(on_path, t["time_mtu"], rel_tol=1e-9,
                            abs_tol=1e-6)

    def test_dm_decomposition_attributes_comm(self):
        t = self._crit(_trace("pagerank", variant="push", dm=True))["totals"]
        assert t["reconciled"] and t["comm"] > 0

    def test_per_lane_identity(self):
        for dm in (False, True):
            crit = self._crit(_trace("bfs", variant="push", dm=dm))
            t = crit["totals"]
            off = t["sync"] + t["recovery_stall"]
            for lane in crit["lanes"]:
                assert math.isclose(lane["busy"] + lane["idle"] + off,
                                    t["time_mtu"], rel_tol=1e-9,
                                    abs_tol=1e-6), lane
            assert math.isclose(sum(la["idle"] for la in crit["lanes"]),
                                t["off_path_idle"], rel_tol=1e-9,
                                abs_tol=1e-6)

    def test_fault_runs_still_reconcile(self):
        t = self._crit(
            _trace("pagerank", variant="push", dm=True, faults=True))["totals"]
        assert t["reconciled"] and t["recovery_stall"] > 0
        t = self._crit(_trace("bfs", variant="push", faults=True))["totals"]
        assert t["reconciled"]

    def test_single_lane_run_has_no_off_path_idle(self):
        t = self._crit(_trace("pagerank", variant="push", P=1))["totals"]
        assert t["reconciled"] and t["off_path_idle"] == 0.0

    def test_rollup_carries_decomposition(self):
        roll = metrics_rollup(_trace("sssp", variant="push", dm=True))
        crit = roll["critical_path"]
        assert crit["totals"]["reconciled"]
        assert crit["intervals"] and crit["lanes"]
        for iv in crit["intervals"]:
            assert iv["compute"] + iv["comm"] + iv["injected"] <= \
                iv["time"] * (1 + 1e-9)


class TestTrafficMatrix:
    """rollup["traffic"]: per-rank-pair verb/byte matrix reconciles
    exactly with the run counters and the cut bound (PR 9)."""

    def test_totals_reconcile_exactly(self):
        from repro.observability import traffic_matrix
        from repro.observability.export import _TRAFFIC_TOTALS
        for variant in ("push", "pull"):
            tracer = _trace("pagerank", variant=variant, dm=True)
            tm = traffic_matrix(tracer)
            totals = tracer.rt.total_counters()
            for counter in _TRAFFIC_TOTALS.values():
                assert tm["totals"][counter] == getattr(totals, counter), \
                    counter

    def test_row_sums_match_per_rank_counters(self):
        from repro.observability import traffic_matrix
        tracer = _trace("pagerank", variant="pull", dm=True)
        tm = traffic_matrix(tracer)
        rt = tracer.rt
        for rank in range(rt.P):
            row = [p for p in tm["pairs"] if p["src"] == rank]
            assert sum(p["rma_bytes"] for p in row) == \
                rt.proc_counters[rank].remote_bytes
            assert sum(p["gets"] for p in row) == \
                rt.proc_counters[rank].remote_gets

    def test_matrix_satisfies_cut_bound(self):
        # the matrix totals feed dm_crosscheck exactly like the run
        # counters do: the traced traffic obeys the cut-based bound
        from repro.analysis.crosscheck import dm_crosscheck
        from repro.machine.counters import PerfCounters
        from repro.observability import traffic_matrix
        tracer = _trace("pagerank", variant="push", dm=True, iterations=5)
        tm = traffic_matrix(tracer)
        roll = metrics_rollup(tracer)
        run_totals = tracer.rt.total_counters()
        c = PerfCounters(
            **dict(tm["totals"]),
            collectives=run_totals.collectives,
            collective_bytes=run_totals.collective_bytes,
        )
        check = dm_crosscheck(
            "pagerank", "rma-push", c,
            m_cross=roll["cut"]["edges_cross"], P=tracer.rt.P,
            supersteps=tracer.rt.superstep_index, rounds=5)
        assert check.ok, check

    def test_local_verbs_excluded(self):
        # owner == issuing rank verbs charge no remote counters; the
        # matrix must skip them (no src == dst pairs) yet still close
        from repro.observability import traffic_matrix
        tracer = _trace("pagerank", variant="push", dm=True)
        local = [ev for ev in tracer.events if ev.kind == "rma"
                 and ev.data["owner"] == ev.lane]
        assert local, "expected owner-local verbs in the trace"
        tm = traffic_matrix(tracer)
        assert all(p["src"] != p["dst"] for p in tm["pairs"])

    def test_sm_matrix_is_empty(self):
        from repro.observability import traffic_matrix
        tm = traffic_matrix(_trace("pagerank", variant="push"))
        assert tm["pairs"] == []
        assert all(v == 0 for v in tm["totals"].values())


class TestSwitchesInRollup:
    """Direction-switch decisions with operands surface in the rollup."""

    def test_switching_bfs_exposes_operands(self):
        tracer = _trace("bfs", variant="switching")
        roll = metrics_rollup(tracer)
        events = [ev for ev in tracer.events if ev.kind == "switch"]
        assert len(roll["switches"]) == len(events) > 0
        for sw in roll["switches"]:
            assert {"ts", "iteration", "previous", "chosen"} <= set(sw)
        assert any(sw["previous"] != sw["chosen"]
                   for sw in roll["switches"])

    def test_non_switching_run_has_empty_list(self):
        roll = metrics_rollup(_trace("bfs", variant="push"))
        assert roll["switches"] == []


def tracer_graph():
    """The instance every default ``run_traced`` call traces."""
    from repro.analysis.runner import instance_graph
    return instance_graph("er", 96, d_bar=4.0, seed=7, weighted=False)


class TestExporterEdgeCases:
    """Empty traces and zero-duration spans stay valid (ISSUE-5 b)."""

    def _empty_tracer(self, tiny_graph):
        from repro.observability import attach_tracer
        from repro.runtime.sm import SMRuntime
        rt = SMRuntime(tiny_graph, P=4)
        return attach_tracer(rt, graph=tiny_graph)

    def test_empty_trace_exports_are_schema_complete(self, tiny_graph,
                                                     tmp_path):
        tracer = self._empty_tracer(tiny_graph)
        lines = to_jsonl_lines(tracer)
        assert len(lines) == 1 and json.loads(lines[0])["schema"] == SCHEMA
        chrome = chrome_trace(tracer)
        assert chrome["traceEvents"]  # metadata lanes are always present
        assert all(ev["ph"] == "M" for ev in chrome["traceEvents"])
        roll = metrics_rollup(tracer)
        for key in ("schema", "meta", "time_mtu", "steps", "series",
                    "phases", "cache", "cut", "comm", "frontier", "totals",
                    "traffic", "switches", "critical_path"):
            assert key in roll
        assert roll["steps"] == [] and roll["cache"]["rows"] == []
        assert roll["traffic"]["pairs"] == [] and roll["switches"] == []
        crit = roll["critical_path"]["totals"]
        assert crit["reconciled"] and crit["time_mtu"] == 0.0
        assert roll["cut"]["edges_total"] > 0
        paths = write_outputs(tracer, str(tmp_path / "empty"), flame=True)
        assert Path(paths["flame"]).read_text() == ""
        json.loads(Path(paths["chrome"]).read_text())
        json.loads(Path(paths["metrics"]).read_text())

    def test_fault_only_trace_exports_are_valid(self, tiny_graph, tmp_path):
        # a trace holding nothing but fault events (no spans, no
        # barriers) still rolls up: zero time, empty traffic, a
        # reconciled all-zero critical path
        tracer = self._empty_tracer(tiny_graph)
        tracer.on_fault("message_drop", (1, 2, "payload"), 0)
        tracer.on_fault("rma_lost", (3,), 1)
        roll = metrics_rollup(tracer)
        assert roll["time_mtu"] == 0.0
        assert roll["traffic"]["pairs"] == []
        assert roll["critical_path"]["totals"]["reconciled"]
        paths = write_outputs(tracer, str(tmp_path / "faulty"), flame=True)
        json.loads(Path(paths["metrics"]).read_text())

    def test_zero_duration_spans_not_exported_as_empty_boxes(self):
        # sequential regions put all other lanes at span 0.0 with empty
        # deltas; those must not become zero-duration B/E boxes
        chrome = chrome_trace(_trace("bfs", variant="push"))
        P = 4
        opens: dict[tuple[int, str], list[dict]] = {}
        for ev in chrome["traceEvents"]:
            if ev["ph"] == "B" and ev["tid"] < P:
                opens.setdefault((ev["tid"], ev["name"]), []).append(ev)
            elif ev["ph"] == "E" and ev["tid"] < P:
                b = opens[(ev["tid"], ev["name"])].pop()
                if ev["ts"] == b["ts"]:
                    assert b["args"], ("zero-duration span with no "
                                       "payload exported")

    def test_zero_read_phase_has_zero_rate(self):
        from repro.observability.export import _cache_view
        rows = _cache_view([{"label": "idle", "events": 1, "time": 0.0,
                             "counters": {}}])["rows"]
        assert rows[0]["l1_per_read"] == 0.0


class TestProfileFold:
    def test_profiled_runtime_uses_tracer(self, tiny_graph):
        from repro.algorithms.pagerank import pagerank
        from repro.runtime.profiler import ProfiledRuntime
        rt = ProfiledRuntime(tiny_graph, P=4)
        pagerank(tiny_graph, rt, direction="pull", iterations=2)
        prof = rt.profile
        assert prof.records and rt.tracer is not None
        # profile totals cover region spans; barrier time is the rest
        barriers = sum(ev.dur for ev in rt.tracer.events
                       if ev.kind == "barrier")
        assert abs(prof.total + barriers - rt.time) < 1e-9

    def test_profile_from_trace_matches_region_events(self, tiny_graph):
        from repro.algorithms.pagerank import pagerank
        from repro.runtime.profiler import Profile
        from repro.runtime.sm import SMRuntime
        from repro.observability import attach_tracer
        rt = SMRuntime(tiny_graph, P=4)
        tracer = attach_tracer(rt)
        pagerank(tiny_graph, rt, direction="push", iterations=2)
        prof = Profile.from_trace(tracer.events)
        regions = [ev for ev in tracer.events if ev.kind == "region"]
        assert len(prof.records) == len(regions)
        assert [r.span for r in prof.records] == [ev.dur for ev in regions]

    def test_runtime_modules_stay_import_light(self):
        # Profile.render lazy-imports the chart helpers; importing the
        # profiler (or the observability package) must not drag in the
        # harness
        code = ("import sys; import repro.runtime.profiler, "
                "repro.observability; "
                "assert 'repro.harness.charts' not in sys.modules, "
                "'chart code leaked into the runtime import graph'")
        env = dict(os.environ, PYTHONPATH=SRC)
        subprocess.run([sys.executable, "-c", code], check=True, env=env)
