"""Tests for the unified trace/metrics layer (repro.observability).

Covers the ISSUE-4 acceptance surface: bit-identical JSONL exports
(including under fault plans), exact PerfCounters reconciliation
between region/superstep deltas and run totals, Chrome trace-event
structural validity (matched B/E pairs, monotonic per-lane
timestamps), the metrics rollup, the Profile fold, and the
import-lightness of the runtime/observability modules.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.observability import (
    SCHEMA, chrome_trace, metrics_rollup, to_jsonl_lines, write_outputs,
)
from repro.observability.driver import run_traced

SRC = str(Path(__file__).parent.parent / "src")


def _trace(algorithm="pagerank", **kw):
    _rt, tracer, _resolved, _result = run_traced(algorithm, **kw)
    return tracer


class TestDeterminism:
    def test_sm_jsonl_bit_identical(self):
        a = to_jsonl_lines(_trace("pagerank", variant="push"))
        b = to_jsonl_lines(_trace("pagerank", variant="push"))
        assert a == b

    def test_dm_fault_jsonl_bit_identical(self):
        kw = dict(variant="push", dm=True, faults=True)
        a = to_jsonl_lines(_trace("pagerank", **kw))
        b = to_jsonl_lines(_trace("pagerank", **kw))
        assert a == b
        # the fault plan must actually have fired for this to mean much
        assert any('"kind":"recovery"' in line or '"kind":"fault"' in line
                   for line in a)

    def test_chrome_and_metrics_deterministic(self):
        t1 = _trace("bfs", variant="switching")
        t2 = _trace("bfs", variant="switching")
        dumps = lambda o: json.dumps(o, sort_keys=True)  # noqa: E731
        assert dumps(chrome_trace(t1)) == dumps(chrome_trace(t2))
        assert dumps(metrics_rollup(t1)) == dumps(metrics_rollup(t2))

    def test_written_files_identical_across_runs(self, tmp_path):
        p1 = write_outputs(_trace("sssp", variant="pull", dm=True),
                           str(tmp_path / "a"))
        p2 = write_outputs(_trace("sssp", variant="pull", dm=True),
                           str(tmp_path / "b"))
        for key in ("jsonl", "chrome", "metrics"):
            assert Path(p1[key]).read_bytes() == Path(p2[key]).read_bytes()


class TestReconciliation:
    """Σ region/superstep deltas + barrier events == run totals, exactly."""

    @pytest.mark.parametrize("algorithm,kw", [
        ("pagerank", dict(variant="push")),
        ("pagerank", dict(variant="pull")),
        ("bfs", dict(variant="switching")),
        ("sssp", dict(variant="push")),
        ("pagerank", dict(variant="pull", dm=True)),
        ("bfs", dict(variant="push", dm=True)),
        ("sssp", dict(variant="push", dm=True)),
        ("pagerank", dict(variant="push", dm=True, faults=True)),
        ("bfs", dict(variant="switching", dm=True, faults=True)),
    ])
    def test_traced_totals_match_run_totals(self, algorithm, kw):
        tracer = _trace(algorithm, **kw)
        traced, actual = tracer.reconcile()
        assert traced.to_dict() == actual.to_dict()

    def test_totals_are_nonzero(self):
        traced, actual = _trace("pagerank", variant="push").reconcile()
        assert any(v for v in actual.to_dict().values())


class TestChromeTrace:
    def _events(self, **kw):
        return chrome_trace(_trace(**kw))["traceEvents"]

    @pytest.mark.parametrize("kw", [
        dict(algorithm="pagerank", variant="push"),
        dict(algorithm="pagerank", variant="push", dm=True, faults=True),
    ])
    def test_b_e_pairs_match_per_lane(self, kw):
        stacks: dict[int, list[str]] = {}
        for ev in self._events(**kw):
            if ev["ph"] == "B":
                stacks.setdefault(ev["tid"], []).append(ev["name"])
            elif ev["ph"] == "E":
                assert stacks.get(ev["tid"]), f"E without B on {ev['tid']}"
                assert stacks[ev["tid"]].pop() == ev["name"]
        assert all(not s for s in stacks.values()), "unclosed B events"

    def test_timestamps_valid_for_importer(self):
        # trace importers (Perfetto) sort by ts, so file order is free;
        # what must hold is E.ts >= B.ts for every pair and nothing
        # before the epoch
        opens: dict[int, list[float]] = {}
        for ev in self._events(algorithm="pagerank", variant="push",
                               dm=True, faults=True):
            if "ts" in ev:
                assert ev["ts"] >= 0.0
            if ev["ph"] == "B":
                opens.setdefault(ev["tid"], []).append(ev["ts"])
            elif ev["ph"] == "E":
                assert ev["ts"] >= opens[ev["tid"]].pop()

    def test_runtime_lane_is_monotonic(self):
        # the runtime lane (barriers / supersteps / global instants) is
        # emitted in simulated-time order even in file order
        evs = self._events(algorithm="pagerank", variant="push", dm=True)
        P = 4
        last = 0.0
        for ev in evs:
            if ev.get("tid") == P and "ts" in ev and ev["ph"] != "E":
                assert ev["ts"] >= last
                last = ev["ts"]

    def test_one_lane_per_rank_plus_runtime(self):
        evs = self._events(algorithm="pagerank", variant="push", dm=True,
                           P=4)
        names = {ev["args"]["name"] for ev in evs
                 if ev["ph"] == "M" and ev["name"] == "thread_name"}
        assert names == {"rank 0", "rank 1", "rank 2", "rank 3", "runtime"}

    def test_frontier_counter_track(self):
        evs = self._events(algorithm="bfs", variant="push")
        counters = [ev for ev in evs if ev["ph"] == "C"]
        assert counters and all(ev["name"] == "frontier-size"
                                for ev in counters)


class TestEventContent:
    def test_jsonl_header_carries_schema(self):
        lines = to_jsonl_lines(_trace("pagerank", variant="push"))
        head = json.loads(lines[0])
        assert head["schema"] == SCHEMA
        assert head["runtime"] == "sm" and head["P"] == 4

    def test_switch_events_carry_operands(self):
        tracer = _trace("bfs", variant="switching")
        switches = [ev for ev in tracer.events if ev.kind == "switch"]
        assert switches, "direction-optimizing BFS must log its decisions"
        for ev in switches:
            assert "frontier_edges" in ev.data and "alpha" in ev.data
            assert ev.data["chosen"] in ("push", "pull")

    def test_frontier_events_carry_density(self):
        tracer = _trace("bfs", variant="push")
        fronts = [ev for ev in tracer.events if ev.kind == "frontier"]
        assert fronts
        for ev in fronts:
            assert 0.0 <= ev.data["density"] <= 1.0

    def test_regions_are_phase_annotated(self):
        tracer = _trace("pagerank", variant="pull")
        labels = {ev.label for ev in tracer.events if ev.kind == "region"}
        assert "pr.pull" in labels and "pr.finalize" in labels

    def test_dm_comm_verbs_recorded(self):
        tracer = _trace("pagerank", variant="push", dm=True)
        kinds = {ev.kind for ev in tracer.events}
        assert "rma" in kinds and "flush" in kinds

    def test_recovery_events_land_on_injected_lane(self):
        tracer = _trace("pagerank", variant="push", dm=True, faults=True)
        recov = [ev for ev in tracer.events if ev.kind == "recovery"]
        assert recov, "the default chaos plan must trigger recovery"
        P = tracer.rt.P
        assert all(ev.lane is None or 0 <= ev.lane < P for ev in recov)
        assert any(ev.lane is not None for ev in recov)

    def test_faults_require_dm(self):
        with pytest.raises(ValueError, match="requires --dm"):
            run_traced("pagerank", faults=True)


class TestMetricsRollup:
    def test_series_sum_to_step_counters(self):
        roll = metrics_rollup(_trace("pagerank", variant="push"))
        for name, values in roll["series"].items():
            total = sum(s["counters"].get(name, 0) for s in roll["steps"])
            assert sum(values) == total

    def test_step_times_bounded_by_run_time(self):
        roll = metrics_rollup(_trace("pagerank", variant="push", dm=True))
        assert sum(s["time"] for s in roll["steps"]) <= roll["time_mtu"]


class TestProfileFold:
    def test_profiled_runtime_uses_tracer(self, tiny_graph):
        from repro.algorithms.pagerank import pagerank
        from repro.runtime.profiler import ProfiledRuntime
        rt = ProfiledRuntime(tiny_graph, P=4)
        pagerank(tiny_graph, rt, direction="pull", iterations=2)
        prof = rt.profile
        assert prof.records and rt.tracer is not None
        # profile totals cover region spans; barrier time is the rest
        barriers = sum(ev.dur for ev in rt.tracer.events
                       if ev.kind == "barrier")
        assert abs(prof.total + barriers - rt.time) < 1e-9

    def test_profile_from_trace_matches_region_events(self, tiny_graph):
        from repro.algorithms.pagerank import pagerank
        from repro.runtime.profiler import Profile
        from repro.runtime.sm import SMRuntime
        from repro.observability import attach_tracer
        rt = SMRuntime(tiny_graph, P=4)
        tracer = attach_tracer(rt)
        pagerank(tiny_graph, rt, direction="push", iterations=2)
        prof = Profile.from_trace(tracer.events)
        regions = [ev for ev in tracer.events if ev.kind == "region"]
        assert len(prof.records) == len(regions)
        assert [r.span for r in prof.records] == [ev.dur for ev in regions]

    def test_runtime_modules_stay_import_light(self):
        # Profile.render lazy-imports the chart helpers; importing the
        # profiler (or the observability package) must not drag in the
        # harness
        code = ("import sys; import repro.runtime.profiler, "
                "repro.observability; "
                "assert 'repro.harness.charts' not in sys.modules, "
                "'chart code leaked into the runtime import graph'")
        env = dict(os.environ, PYTHONPATH=SRC)
        subprocess.run([sys.executable, "-c", code], check=True, env=env)
