"""Tests for the Graph500-style result validators."""

import numpy as np
import pytest

from repro.algorithms import bfs, sssp_delta
from repro.graph import from_edges
from repro.graph.validate import (
    ValidationError, validate_bfs_tree, validate_sssp,
)
from tests.conftest import make_runtime


class TestBFSValidator:
    def test_accepts_real_bfs(self, comm_graph):
        rt = make_runtime(comm_graph)
        r = bfs(comm_graph, rt, 0, direction="push")
        validate_bfs_tree(comm_graph, 0, r.parent, r.level)

    def test_accepts_pull_bfs(self, road_graph):
        root = int(np.argmax(np.diff(road_graph.offsets)))
        rt = make_runtime(road_graph)
        r = bfs(road_graph, rt, root, direction="pull")
        validate_bfs_tree(road_graph, root, r.parent, r.level)

    def test_rejects_broken_root(self, tiny_graph):
        parent = np.array([1, 0, 1, 0, 3, -1])
        level = np.array([0, 1, 2, 1, 2, -1])
        with pytest.raises(ValidationError):
            validate_bfs_tree(tiny_graph, 0, parent, level)

    def test_rejects_non_edge_parent(self, tiny_graph):
        rt = make_runtime(tiny_graph)
        r = bfs(tiny_graph, rt, 0, direction="push")
        bad_parent = r.parent.copy()
        bad_parent[4] = 1  # (1, 4) is not an edge
        with pytest.raises(ValidationError):
            validate_bfs_tree(tiny_graph, 0, bad_parent, r.level)

    def test_rejects_wrong_level(self, tiny_graph):
        rt = make_runtime(tiny_graph)
        r = bfs(tiny_graph, rt, 0, direction="push")
        bad_level = r.level.copy()
        bad_level[4] = 7
        with pytest.raises(ValidationError):
            validate_bfs_tree(tiny_graph, 0, r.parent, bad_level)

    def test_rejects_missing_reachable_vertex(self, tiny_graph):
        rt = make_runtime(tiny_graph)
        r = bfs(tiny_graph, rt, 0, direction="push")
        bad_parent, bad_level = r.parent.copy(), r.level.copy()
        bad_parent[4] = -1
        bad_level[4] = -1
        with pytest.raises(ValidationError):
            validate_bfs_tree(tiny_graph, 0, bad_parent, bad_level)

    def test_rejects_non_minimal_level(self):
        # square 0-1-2-3-0: claiming 2 at level 3 via a longer path
        g = from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        parent = np.array([0, 0, 1, 0])
        level = np.array([0, 1, 2, 1])
        validate_bfs_tree(g, 0, parent, level)  # the true tree passes
        with pytest.raises(ValidationError):
            validate_bfs_tree(g, 0, np.array([0, 0, 1, 2]),
                              np.array([0, 1, 2, 3]))


class TestSSSPValidator:
    def test_accepts_real_sssp(self, er_weighted):
        src = int(np.argmax(np.diff(er_weighted.offsets)))
        rt = make_runtime(er_weighted)
        r = sssp_delta(er_weighted, rt, src, direction="push")
        validate_sssp(er_weighted, src, r.dist)

    def test_rejects_nonzero_source(self, tiny_weighted):
        dist = np.zeros(6)
        dist[0] = 1.0
        with pytest.raises(ValidationError):
            validate_sssp(tiny_weighted, 0, dist)

    def test_rejects_triangle_violation(self, tiny_weighted):
        rt = make_runtime(tiny_weighted)
        r = sssp_delta(tiny_weighted, rt, 0, direction="push")
        bad = r.dist.copy()
        bad[4] += 10.0  # now dist[4] > dist[3] + W(3,4)
        with pytest.raises(ValidationError):
            validate_sssp(tiny_weighted, 0, bad)

    def test_rejects_too_small_distance(self, tiny_weighted):
        rt = make_runtime(tiny_weighted)
        r = sssp_delta(tiny_weighted, rt, 0, direction="push")
        bad = r.dist.copy()
        bad[2] -= 0.5  # no tight predecessor anymore
        with pytest.raises(ValidationError):
            validate_sssp(tiny_weighted, 0, bad)

    def test_rejects_wrong_reachability(self, tiny_weighted):
        rt = make_runtime(tiny_weighted)
        r = sssp_delta(tiny_weighted, rt, 0, direction="push")
        bad = r.dist.copy()
        bad[5] = 99.0  # vertex 5 is isolated
        with pytest.raises(ValidationError):
            validate_sssp(tiny_weighted, 0, bad)
