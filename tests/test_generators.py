"""Unit tests for the graph generators and dataset registry."""

import numpy as np
import pytest

from repro.generators import (
    DATASETS, community_graph, dataset_table, erdos_renyi, grid_graph,
    kronecker, load_dataset, purchase_graph, rmat, road_network,
)
from repro.graph.properties import approx_diameter, graph_stats


def _check_valid_undirected(g):
    src = np.repeat(np.arange(g.n), np.diff(g.offsets))
    assert not np.any(src == g.adj), "self loop"
    for v in range(0, g.n, max(1, g.n // 50)):
        for w in g.neighbors(v):
            assert g.has_edge(int(w), v), "asymmetric edge"


class TestErdosRenyi:
    def test_basic(self):
        g = erdos_renyi(500, d_bar=4.0, seed=1)
        assert g.n == 500
        assert 0.7 * 2000 < g.m <= 2000
        _check_valid_undirected(g)

    def test_deterministic(self):
        assert erdos_renyi(100, 3.0, seed=5) == erdos_renyi(100, 3.0, seed=5)

    def test_seed_changes_graph(self):
        assert erdos_renyi(100, 3.0, seed=5) != erdos_renyi(100, 3.0, seed=6)

    def test_weighted(self):
        g = erdos_renyi(100, 3.0, seed=1, weighted=True)
        assert g.weights is not None and np.all(g.weights >= 1.0)

    def test_too_small_raises(self):
        with pytest.raises(ValueError):
            erdos_renyi(1, 2.0)


class TestRMAT:
    def test_size_and_validity(self):
        g = rmat(9, d_bar=8.0, seed=2)
        assert g.n == 512
        _check_valid_undirected(g)

    def test_skewed_degrees(self):
        """R-MAT must produce a heavier tail than Erdős–Rényi."""
        gr = rmat(10, d_bar=8.0, seed=2)
        ge = erdos_renyi(1024, d_bar=8.0, seed=2)
        assert gr.max_degree > 2 * ge.max_degree

    def test_kronecker_alias(self):
        assert kronecker(8, d_bar=4.0, seed=3) == rmat(8, d_bar=4.0, seed=3)

    def test_invalid_probs(self):
        with pytest.raises(ValueError):
            rmat(8, a=0.9, b=0.1, c=0.1)


class TestRoad:
    def test_grid(self):
        g = grid_graph(4, 5)
        assert g.n == 20 and g.m == 4 * 4 + 3 * 5
        _check_valid_undirected(g)

    def test_road_network_regime(self):
        g = road_network(32, 32, seed=4)
        s = graph_stats(g)
        assert s.d_bar < 2.0
        assert s.diameter > 20

    def test_keep_bounds(self):
        with pytest.raises(ValueError):
            road_network(4, 4, keep=0.0)

    def test_weighted_by_default(self):
        assert road_network(8, 8).weights is not None


class TestRealWorld:
    def test_community_regime(self):
        g = community_graph(512, d_bar=20.0, seed=1)
        s = graph_stats(g)
        assert s.d_bar > 10
        assert s.diameter <= 6
        _check_valid_undirected(g)

    def test_community_has_triangles(self):
        import networkx as nx
        from repro.graph import to_networkx
        g = community_graph(256, d_bar=15.0, seed=1)
        assert sum(nx.triangles(to_networkx(g)).values()) > 100

    def test_purchase_regime(self):
        g = purchase_graph(512, seed=1)
        s = graph_stats(g)
        assert 2.0 < s.d_bar < 5.0
        _check_valid_undirected(g)

    def test_too_small(self):
        with pytest.raises(ValueError):
            community_graph(2)
        with pytest.raises(ValueError):
            purchase_graph(3, edges_per_vertex=3)


class TestRegistry:
    def test_known_ids(self):
        assert {"orc", "pok", "ljn", "am", "rca", "rmat", "er"} <= set(DATASETS)

    def test_load_memoized(self):
        a = load_dataset("ljn", scale=9)
        b = load_dataset("ljn", scale=9)
        assert a is b

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            load_dataset("nope")

    def test_table_matches_paper_ordering(self):
        rows = dataset_table(scale=10)
        d = {r["ID"]: r for r in rows}
        assert d["orc"]["d̄"] > d["pok"]["d̄"] > d["ljn"]["d̄"]
        assert d["rca"]["D"] > d["am"]["D"] > d["orc"]["D"]

    def test_weighted_variant(self):
        g = load_dataset("rca", scale=9, weighted=True)
        assert g.weights is not None


class TestDiameter:
    def test_path_graph_exact(self):
        from repro.graph import from_edges
        g = from_edges(10, [(i, i + 1) for i in range(9)])
        assert approx_diameter(g) == 9

    def test_empty(self):
        from repro.graph import from_edges
        assert approx_diameter(from_edges(3, [])) == 0

    def test_lower_bounds_true_diameter(self):
        import networkx as nx
        from repro.graph import to_networkx
        g = community_graph(128, d_bar=6.0, seed=2)
        nxg = to_networkx(g)
        comp = max(nx.connected_components(nxg), key=len)
        true_d = nx.diameter(nxg.subgraph(comp))
        assert approx_diameter(g) <= true_d
        assert approx_diameter(g) >= true_d - 2
