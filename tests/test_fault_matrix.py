"""Chaos-suite matrix tests (repro.analysis.fault_runner) + road dataset.

The heavy gate runs from CI via ``repro analyze --faults``; here the
matrix is exercised at a reduced scale so the contracts -- convergence
under every fault plan, epoch-checker cleanliness during recovery, and
strictly-accounted overhead -- are part of the tier-1 battery.
"""

from __future__ import annotations

import pytest

from repro.analysis.dm_runner import DM_MATRIX, analyze_dm
from repro.analysis.fault_runner import (
    SM_MATRIX, FaultRun, analyze_faults, analyze_sm_faults,
    default_fault_plans, default_sm_fault_plans, format_overhead_table,
    markdown_overhead_table, overhead_table,
)
from repro.analysis.runner import analyze_algorithms, instance_graph
from repro.runtime.faults import FaultPlan
from repro.runtime.sm_faults import SMFaultPlan


@pytest.fixture(scope="module")
def runs() -> list[FaultRun]:
    return analyze_faults(n=40, P=4, fault_seeds=(0,))


@pytest.fixture(scope="module")
def sm_runs() -> list[FaultRun]:
    return analyze_sm_faults(n=40, P=4, fault_seeds=(0,))


class TestChaosMatrix:
    def test_every_cell_and_plan_passes(self, runs):
        bad = [r for r in runs if not r.ok]
        assert bad == [], "\n".join(str(r) for r in bad)

    def test_full_matrix_is_covered(self, runs):
        cells = {(r.algorithm, r.variant) for r in runs}
        expected = {(a, v) for a, vs in DM_MATRIX for v in vs}
        assert cells == expected
        plans = {r.plan_name for r in runs}
        assert plans == {name for name, _ in default_fault_plans(0)}

    def test_faults_actually_fired(self, runs):
        # the chaos plan must fire on every cell; per-class plans only
        # fire where their channel exists (no drops on pure-RMA kernels)
        chaos = [r for r in runs if r.plan_name == "chaos"]
        assert all(r.fired > 0 for r in chaos)
        assert sum(r.fired for r in runs) > 100

    def test_costly_recovery_shows_in_overhead(self, runs):
        costly = [r for r in runs if r.costly > 0]
        assert costly, "no run did costly recovery work?"
        assert all(r.overhead > 0 for r in costly)

    def test_overhead_table_shape(self, runs):
        rows = overhead_table(runs)
        assert all(row["overhead_pct"] >= 0 for row in rows)
        text = format_overhead_table(runs)
        assert "chaos" in text and "SSSP" in text

    def test_custom_plan_list(self):
        plans = [("drop-only", FaultPlan(seed=0, drop=0.2))]
        runs = analyze_faults(n=32, P=4, fault_seeds=(0,), plans=plans)
        assert {r.plan_name for r in runs} == {"drop-only"}
        assert all(r.ok for r in runs)


class TestSMChaosMatrix:
    def test_every_cell_and_plan_passes(self, sm_runs):
        bad = [r for r in sm_runs if not r.ok]
        assert bad == [], "\n".join(str(r) for r in bad)

    def test_full_matrix_is_covered(self, sm_runs):
        cells = {(r.algorithm, r.variant) for r in sm_runs}
        expected = {(a, v) for a, vs in SM_MATRIX for v in vs}
        assert cells == expected
        assert all(r.runtime == "sm" for r in sm_runs)
        plans = {r.plan_name for r in sm_runs}
        assert plans == {name for name, _ in default_sm_fault_plans(0)}

    def test_chaos_plan_fires_everywhere(self, sm_runs):
        chaos = [r for r in sm_runs if r.plan_name == "chaos"]
        assert all(r.fired > 0 for r in chaos)

    def test_every_cell_reconciles_counters(self, sm_runs):
        # recovery work is re-accounted inside traced regions, recovery
        # waits are counter-free stalls -- reconciliation must be exact
        assert all(r.reconciled for r in sm_runs)

    def test_costly_recovery_shows_in_overhead(self, sm_runs):
        costly = [r for r in sm_runs if r.costly > 0]
        assert costly, "no SM run did costly recovery work?"
        assert all(r.overhead > 0 for r in costly)

    def test_custom_plan_list(self):
        plans = [("cas-only", SMFaultPlan(seed=0, cas_lost=0.2))]
        runs = analyze_sm_faults(n=32, P=4, fault_seeds=(0,), plans=plans)
        assert {r.plan_name for r in runs} == {"cas-only"}
        assert all(r.ok for r in runs)

    def test_combined_tables_have_both_blocks(self, runs, sm_runs):
        both = runs + sm_runs
        text = format_overhead_table(both)
        assert "dm fault overhead" in text
        assert "sm fault overhead" in text
        md = markdown_overhead_table(both)
        assert "### DM fault overhead" in md
        assert "### SM fault overhead" in md
        # the two grids have different plan vocabularies
        assert "cas-lost" in md and "rma-lost" in md


class TestRoadDataset:
    def test_instance_graph_road(self):
        g = instance_graph("road", 64, 4.0, 7, weighted=True)
        assert g.n == 64 and g.weights is not None

    def test_instance_graph_unknown(self):
        with pytest.raises(ValueError, match="road"):
            instance_graph("socnet", 64, 4.0, 7, weighted=False)

    def test_dm_matrix_on_road(self):
        runs = analyze_dm(n=64, P=4, dataset="road")
        bad = [r for r in runs if not r.ok]
        assert bad == [], "\n".join(str(r) for r in bad)

    def test_sm_matrix_on_road(self):
        runs = analyze_algorithms(n=64, P=4, dataset="road",
                                  algorithms=("BFS", "SSSP-Δ"))
        bad = [r for r in runs if not r.ok]
        assert bad == [], "\n".join(str(r) for r in bad)

    def test_chaos_on_road(self):
        plans = [("chaos", default_fault_plans(0)[-1][1])]
        runs = analyze_faults(n=36, P=4, dataset="road",
                              fault_seeds=(0,), plans=plans)
        bad = [r for r in runs if not r.ok]
        assert bad == [], "\n".join(str(r) for r in bad)


class TestCommDataset:
    """The communication-heavy family across all three suites."""

    def test_instance_graph_comm(self):
        g = instance_graph("comm", 64, 4.0, 7, weighted=True)
        assert g.n == 64 and g.weights is not None
        # the hub construction must beat the requested floor density
        assert g.m / g.n >= 4.0

    def test_dm_matrix_on_comm(self):
        runs = analyze_dm(n=64, P=4, dataset="comm")
        bad = [r for r in runs if not r.ok]
        assert bad == [], "\n".join(str(r) for r in bad)

    def test_sm_matrix_on_comm(self):
        runs = analyze_algorithms(n=64, P=4, dataset="comm",
                                  algorithms=("PR", "BFS"))
        bad = [r for r in runs if not r.ok]
        assert bad == [], "\n".join(str(r) for r in bad)

    def test_chaos_on_comm(self):
        plans = [("chaos", default_fault_plans(0)[-1][1])]
        runs = analyze_faults(n=36, P=4, dataset="comm",
                              fault_seeds=(0,), plans=plans)
        bad = [r for r in runs if not r.ok]
        assert bad == [], "\n".join(str(r) for r in bad)
