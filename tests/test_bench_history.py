"""Tests for the append-only bench-history timeline.

The committed ``BENCH_history.jsonl`` is pinned against a fresh
snapshot of the committed ``BENCH_perf.json`` (both are deterministic),
the trend/regression math is unit-tested on synthetic timelines, and
the ``repro bench history`` / ``bench diff --history`` CLI paths are
exercised end to end.
"""

import copy
import json

import pytest

from repro.__main__ import main
from repro.observability.export import _dumps
from repro.observability.history import (
    HISTORY_SCHEMA, append_snapshot, load_history, regressions,
    render_trend, snapshot_from_doc, trend_rows,
)
from repro.observability.regress import BenchDiffError


def _snap(label, times):
    """A synthetic snapshot: {cell key: time_mtu}."""
    return {
        "schema": HISTORY_SCHEMA,
        "label": label,
        "source": "synthetic",
        "bench_schema": "repro-bench/3",
        "kind": "perf",
        "recorded": None,
        "cells": [{"key": k, "time_mtu": v, "counters": {}, "critical": {}}
                  for k, v in sorted(times.items())],
    }


class TestCommittedTimeline:
    def test_seed_line_matches_fresh_snapshot(self):
        """Determinism pin: the committed timeline's seed line is
        byte-equal to a fresh snapshot of the committed perf baseline."""
        with open("BENCH_perf.json") as fh:
            doc = json.load(fh)
        snap = snapshot_from_doc(doc, label="seed",
                                 source="BENCH_perf.json")
        with open("BENCH_history.jsonl") as fh:
            first = fh.readline().rstrip("\n")
        assert first == _dumps(snap)

    def test_committed_timeline_loads(self):
        snapshots = load_history("BENCH_history.jsonl")
        assert snapshots
        assert all(s["schema"] == HISTORY_SCHEMA for s in snapshots)
        assert len(snapshots[0]["cells"]) == 20  # 12 baseline + 8 large
        assert not regressions(snapshots)  # the committed file is clean


class TestTrendMath:
    def test_rows_track_values_and_deltas(self):
        snaps = [_snap("a", {"x": 100.0}), _snap("b", {"x": 110.0})]
        (row,) = trend_rows(snaps)
        assert row["values"] == [100.0, 110.0]
        assert row["pct_prev"] == pytest.approx(10.0)
        assert row["pct_first"] == pytest.approx(10.0)

    def test_missing_cells_skip_to_previous_present(self):
        snaps = [_snap("a", {"x": 100.0}), _snap("b", {}),
                 _snap("c", {"x": 90.0})]
        (row,) = trend_rows(snaps)
        assert row["values"] == [100.0, None, 90.0]
        assert row["pct_prev"] == pytest.approx(-10.0)

    def test_last_window(self):
        snaps = [_snap(str(i), {"x": float(i)}) for i in range(1, 11)]
        (row,) = trend_rows(snaps, last=3)
        assert row["values"] == [8.0, 9.0, 10.0]
        assert row["pct_first"] == pytest.approx(25.0)

    def test_regressions_respect_threshold(self):
        snaps = [_snap("a", {"x": 100.0, "y": 100.0}),
                 _snap("b", {"x": 103.0, "y": 99.0})]
        assert [r["key"] for r in regressions(snaps)] == ["x"]
        assert regressions(snaps, threshold_pct=5.0) == []

    def test_render_markdown_flags_regressions(self):
        snaps = [_snap("a", {"x": 100.0}), _snap("b", {"x": 110.0})]
        table = render_trend(snaps, markdown=True)
        assert "| cell | a | b |" in table
        assert "+10.00%" in table and "REGRESSION" in table
        plain = render_trend(snaps)
        assert "a -> b" in plain and "REGRESSION" in plain

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "h.jsonl"
        path.write_text('{"schema": "nope/1"}\n')
        with pytest.raises(BenchDiffError, match="schema"):
            load_history(str(path))


class TestHistoryCLI:
    def _seed(self, tmp_path, times):
        """A one-line timeline plus a perf doc with the given times."""
        with open("BENCH_perf.json") as fh:
            doc = json.load(fh)
        hist = tmp_path / "h.jsonl"
        append_snapshot(str(hist), snapshot_from_doc(
            doc, label="seed", source="BENCH_perf.json"))
        cand = copy.deepcopy(doc)
        for cell in cand["cells"]:
            cell["time_mtu"] *= times
        cand_path = tmp_path / "cand.json"
        cand_path.write_text(json.dumps(cand))
        return hist, cand_path

    def test_seed_and_trend(self, tmp_path, capsys):
        hist, cand = self._seed(tmp_path, 1.0)
        rc = main(["bench", "history", str(cand), "--history", str(hist),
                   "--label", "now"])
        assert rc in (0, None)
        out = capsys.readouterr().out
        assert "seed -> now" in out
        assert "REGRESSION" not in out
        assert len(load_history(str(hist))) == 2

    def test_gate_fails_on_regression(self, tmp_path, capsys):
        hist, cand = self._seed(tmp_path, 1.07)
        rc = main(["bench", "history", str(cand), "--history", str(hist),
                   "--label", "slow", "--threshold-pct", "2", "--gate"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out and "> 2% threshold" in out

    def test_gate_passes_within_threshold(self, tmp_path, capsys):
        hist, cand = self._seed(tmp_path, 1.01)
        rc = main(["bench", "history", str(cand), "--history", str(hist),
                   "--threshold-pct", "5", "--gate"])
        assert rc in (0, None)

    def test_markdown_output(self, tmp_path, capsys):
        hist, cand = self._seed(tmp_path, 1.0)
        rc = main(["bench", "history", str(cand), "--history", str(hist),
                   "--label", "ci", "--markdown"])
        assert rc in (0, None)
        out = capsys.readouterr().out
        assert out.startswith("## Bench history")
        assert "| cell | seed | ci |" in out

    def test_empty_timeline_without_doc_errors(self, tmp_path, capsys):
        rc = main(["bench", "history", "--history",
                   str(tmp_path / "missing.jsonl")])
        assert rc == 2
        assert "no timeline" in capsys.readouterr().err

    def test_stamp_records_utc_timestamp(self, tmp_path):
        hist, cand = self._seed(tmp_path, 1.0)
        main(["bench", "history", str(cand), "--history", str(hist),
              "--stamp"])
        last = load_history(str(hist))[-1]
        assert last["recorded"].endswith("Z")

    def test_diff_history_link_appends_and_renders(self, tmp_path, capsys):
        """`bench diff --history` records the candidate on the timeline
        and prints the trend after the diff verdict."""
        hist, cand = self._seed(tmp_path, 1.0)
        rc = main(["bench", "diff", "BENCH_perf.json", str(cand),
                   "--history", str(hist), "--history-label", "post"])
        assert rc in (0, None)
        out = capsys.readouterr().out
        assert "seed -> post" in out
        assert len(load_history(str(hist))) == 2
