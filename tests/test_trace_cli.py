"""Smoke tests for the ``python -m repro trace`` subcommand."""

import json

import pytest

from repro.__main__ import main


class TestTraceCommand:
    def test_sm_trace_writes_all_exports(self, capsys, tmp_path):
        out = tmp_path / "t"
        rc = main(["trace", "pagerank", "--variant", "push",
                   "--out", str(out)])
        assert rc == 0
        text = capsys.readouterr().out
        assert "traced pagerank/push [sm]" in text
        assert "counter reconciliation: ok" in text
        for name in ("events.jsonl", "trace.json", "metrics.json"):
            assert (out / name).exists()
        chrome = json.loads((out / "trace.json").read_text())
        assert chrome["traceEvents"]

    def test_dm_faults_trace(self, capsys, tmp_path):
        out = tmp_path / "t"
        rc = main(["trace", "pagerank", "--variant", "push", "--dm",
                   "--faults", "--out", str(out)])
        assert rc == 0
        text = capsys.readouterr().out
        assert "[dm]" in text and "counter reconciliation: ok" in text
        assert "recovery=" in text
        lines = (out / "events.jsonl").read_text().splitlines()
        assert json.loads(lines[0])["runtime"] == "dm"

    def test_switching_bfs_trace(self, capsys, tmp_path):
        rc = main(["trace", "bfs", "--variant", "switching",
                   "--out", str(tmp_path / "t")])
        assert rc == 0
        assert "switch=" in capsys.readouterr().out

    def test_faults_without_dm_traces_sm_chaos(self, capsys, tmp_path):
        # PR 8: --faults on the SM runtime attaches the SM injector
        rc = main(["trace", "bfs", "--faults",
                   "--out", str(tmp_path / "t")])
        out = capsys.readouterr().out
        assert rc == 0
        assert "fault=" in out
        assert "counter reconciliation: ok" in out

    def test_missing_algorithm_without_bench_is_an_error(self, capsys,
                                                         tmp_path):
        rc = main(["trace", "--out", str(tmp_path / "t")])
        assert rc == 2
        assert "algorithm" in capsys.readouterr().out

    def test_flame_export(self, capsys, tmp_path):
        out = tmp_path / "t"
        rc = main(["trace", "pagerank", "--variant", "pull", "--flame",
                   "--out", str(out)])
        assert rc == 0
        assert "flame:" in capsys.readouterr().out
        folded = (out / "flame.folded").read_text()
        assert folded, "a traced run must produce stacks"
        for line in folded.splitlines():
            stack, _, count = line.rpartition(" ")
            assert stack and int(count) > 0

    def test_bench_writes_baseline(self, capsys, tmp_path):
        target = tmp_path / "BENCH_trace.json"
        rc = main(["trace", "--bench", "--out", str(target)])
        assert rc == 0
        doc = json.loads(target.read_text())
        assert doc["schema"] == "repro-bench/3"
        assert doc["kind"] == "trace"
        assert len(doc["cells"]) == 20
        families = {c["family"] for c in doc["cells"]}
        assert families == {"baseline", "large"}
        for cell in doc["cells"]:
            assert cell["time_mtu"] > 0 and cell["events"]
            assert cell["phases"] and cell["cut"]["edges_total"] > 0
            assert cell["counters"]["l1_misses"] > 0
            # PR 9: every cell records its critical-path decomposition
            # (the on-path components sum to the cell time) and its
            # traffic totals (nonzero only on DM cells)
            crit = cell["critical"]
            on_path = (crit["compute"] + crit["comm"]
                       + crit["injected_stall"] + crit["sync"]
                       + crit["recovery_stall"])
            assert on_path == pytest.approx(cell["time_mtu"], rel=1e-9)
            if cell["runtime"] == "dm":
                assert crit["comm"] > 0 and cell["traffic"]
            else:
                assert crit["comm"] == 0 and cell["traffic"] == {}
        for cell in doc["cells"]:
            if cell["family"] == "large":
                assert cell["engine"] == "batched"
                assert cell["runtime"] == "sm"
        perf = json.loads((tmp_path / "BENCH_perf.json").read_text())
        assert perf["schema"] == "repro-bench/3"
        assert perf["kind"] == "perf"
        assert len(perf["cells"]) == 20
        for cell in perf["cells"]:
            assert "phases" not in cell and cell["time_mtu"] > 0
            assert cell["critical"] and cell["machine"]
            assert cell["resolved_variant"]

    def test_bench_matches_committed_baseline(self, tmp_path):
        from pathlib import Path
        root = Path(__file__).parent.parent
        target = tmp_path / "BENCH_trace.json"
        assert main(["trace", "--bench", "--out", str(target)]) == 0
        for name in ("BENCH_trace.json", "BENCH_perf.json"):
            assert json.loads((tmp_path / name).read_text()) == \
                json.loads((root / name).read_text())
