"""Smoke tests for the ``python -m repro trace`` subcommand."""

import json

import pytest

from repro.__main__ import main


class TestTraceCommand:
    def test_sm_trace_writes_all_exports(self, capsys, tmp_path):
        out = tmp_path / "t"
        rc = main(["trace", "pagerank", "--variant", "push",
                   "--out", str(out)])
        assert rc == 0
        text = capsys.readouterr().out
        assert "traced pagerank/push [sm]" in text
        assert "counter reconciliation: ok" in text
        for name in ("events.jsonl", "trace.json", "metrics.json"):
            assert (out / name).exists()
        chrome = json.loads((out / "trace.json").read_text())
        assert chrome["traceEvents"]

    def test_dm_faults_trace(self, capsys, tmp_path):
        out = tmp_path / "t"
        rc = main(["trace", "pagerank", "--variant", "push", "--dm",
                   "--faults", "--out", str(out)])
        assert rc == 0
        text = capsys.readouterr().out
        assert "[dm]" in text and "counter reconciliation: ok" in text
        assert "recovery=" in text
        lines = (out / "events.jsonl").read_text().splitlines()
        assert json.loads(lines[0])["runtime"] == "dm"

    def test_switching_bfs_trace(self, capsys, tmp_path):
        rc = main(["trace", "bfs", "--variant", "switching",
                   "--out", str(tmp_path / "t")])
        assert rc == 0
        assert "switch=" in capsys.readouterr().out

    def test_faults_without_dm_traces_sm_chaos(self, capsys, tmp_path):
        # PR 8: --faults on the SM runtime attaches the SM injector
        rc = main(["trace", "bfs", "--faults",
                   "--out", str(tmp_path / "t")])
        out = capsys.readouterr().out
        assert rc == 0
        assert "fault=" in out
        assert "counter reconciliation: ok" in out

    def test_missing_algorithm_without_bench_is_an_error(self, capsys,
                                                         tmp_path):
        rc = main(["trace", "--out", str(tmp_path / "t")])
        assert rc == 2
        assert "algorithm" in capsys.readouterr().out

    def test_flame_export(self, capsys, tmp_path):
        out = tmp_path / "t"
        rc = main(["trace", "pagerank", "--variant", "pull", "--flame",
                   "--out", str(out)])
        assert rc == 0
        assert "flame:" in capsys.readouterr().out
        folded = (out / "flame.folded").read_text()
        assert folded, "a traced run must produce stacks"
        for line in folded.splitlines():
            stack, _, count = line.rpartition(" ")
            assert stack and int(count) > 0

    def test_bench_writes_baseline(self, capsys, tmp_path):
        target = tmp_path / "BENCH_trace.json"
        rc = main(["trace", "--bench", "--out", str(target)])
        assert rc == 0
        doc = json.loads(target.read_text())
        assert doc["schema"] == "repro-bench/3"
        assert doc["kind"] == "trace"
        assert len(doc["cells"]) == 20
        families = {c["family"] for c in doc["cells"]}
        assert families == {"baseline", "large"}
        for cell in doc["cells"]:
            assert cell["time_mtu"] > 0 and cell["events"]
            assert cell["phases"] and cell["cut"]["edges_total"] > 0
            assert cell["counters"]["l1_misses"] > 0
            # PR 9: every cell records its critical-path decomposition
            # (the on-path components sum to the cell time) and its
            # traffic totals (nonzero only on DM cells)
            crit = cell["critical"]
            on_path = (crit["compute"] + crit["comm"]
                       + crit["injected_stall"] + crit["sync"]
                       + crit["recovery_stall"])
            assert on_path == pytest.approx(cell["time_mtu"], rel=1e-9)
            if cell["runtime"] == "dm":
                assert crit["comm"] > 0 and cell["traffic"]
            else:
                assert crit["comm"] == 0 and cell["traffic"] == {}
        for cell in doc["cells"]:
            if cell["family"] == "large":
                assert cell["engine"] == "batched"
                assert cell["runtime"] == "sm"
        perf = json.loads((tmp_path / "BENCH_perf.json").read_text())
        assert perf["schema"] == "repro-bench/3"
        assert perf["kind"] == "perf"
        assert len(perf["cells"]) == 20
        for cell in perf["cells"]:
            assert "phases" not in cell and cell["time_mtu"] > 0
            assert cell["critical"] and cell["machine"]
            assert cell["resolved_variant"]

    def test_sink_summary_line(self, capsys, tmp_path):
        rc = main(["trace", "pagerank", "--variant", "push",
                   "--out", str(tmp_path / "t")])
        assert rc == 0
        text = capsys.readouterr().out
        assert "sinks: buffer" in text
        assert "events=" in text and "peak-sink-mem=" in text

    def test_sink_rollup_skips_span_exports(self, capsys, tmp_path):
        out = tmp_path / "t"
        rc = main(["trace", "pagerank", "--variant", "push",
                   "--sink", "rollup", "--out", str(out)])
        assert rc == 0
        text = capsys.readouterr().out
        assert "sinks: rollup" in text
        assert "counter reconciliation: ok" in text
        assert "skipped (no sink retains what these need)" in text
        assert (out / "metrics.json").exists()
        assert not (out / "trace.json").exists()
        assert not (out / "events.jsonl").exists()
        metrics = json.loads((out / "metrics.json").read_text())
        assert metrics["schema"] == "repro-metrics/3"

    def test_sink_stream_writes_incremental_jsonl(self, capsys, tmp_path):
        out = tmp_path / "t"
        rc = main(["trace", "pagerank", "--variant", "pull", "--dm",
                   "--sink", "stream", "--out", str(out)])
        assert rc == 0
        assert "sinks: jsonl-stream, rollup" in capsys.readouterr().out
        lines = (out / "events.jsonl").read_text().splitlines()
        assert json.loads(lines[0])["runtime"] == "dm"
        assert len(lines) > 1
        assert (out / "metrics.json").exists()

    def test_sink_sampling_marks_chrome_export(self, capsys, tmp_path):
        out = tmp_path / "t"
        rc = main(["trace", "pagerank", "--variant", "push",
                   "--sink", "sampling", "--sample-events", "16",
                   "--flame", "--out", str(out)])
        assert rc == 0
        assert "sinks: sampling" in capsys.readouterr().out
        chrome = json.loads((out / "trace.json").read_text())
        sampled = chrome["otherData"]["sampled"]
        assert sampled["retained"] <= 16
        assert (out / "flame.folded").read_text()
        # exact counters still present despite sampled spans
        metrics = json.loads((out / "metrics.json").read_text())
        assert metrics["totals"]["reads"] > 0

    def test_wallclock_profile(self, capsys, tmp_path):
        out = tmp_path / "t"
        rc = main(["trace", "pagerank", "--variant", "push",
                   "--wallclock", "--out", str(out)])
        assert rc == 0
        text = capsys.readouterr().out
        assert "wallclock: traced=" in text
        assert "overhead=" in text and "events/s" in text
        block = json.loads((out / "metrics.json").read_text())["wallclock"]
        assert block["clock"] == "wall-seconds"
        assert block["traced_s"] > 0 and block["untraced_s"] > 0
        assert block["events"] > 0 and block["peak_sink_bytes"] > 0
        assert block["phases"]

    def test_wallclock_absent_without_flag(self, tmp_path):
        out = tmp_path / "t"
        assert main(["trace", "pagerank", "--variant", "push",
                     "--out", str(out)]) == 0
        assert "wallclock" not in json.loads(
            (out / "metrics.json").read_text())

    def test_overhead_budget_exceeded_fails(self, capsys, tmp_path):
        # a traced run cannot finish in half the untraced wall time,
        # so a 0.5x budget must trip the gate regardless of noise
        rc = main(["trace", "pagerank", "--variant", "push",
                   "--overhead-budget", "0.5",
                   "--out", str(tmp_path / "t")])
        assert rc == 1
        assert "OVERHEAD BUDGET EXCEEDED" in capsys.readouterr().out

    def test_bench_matches_committed_baseline(self, tmp_path):
        from pathlib import Path
        root = Path(__file__).parent.parent
        target = tmp_path / "BENCH_trace.json"
        assert main(["trace", "--bench", "--out", str(target)]) == 0
        for name in ("BENCH_trace.json", "BENCH_perf.json"):
            assert json.loads((tmp_path / name).read_text()) == \
                json.loads((root / name).read_text())
