"""Tests for the static AST lint pass over push/pull kernels."""

from __future__ import annotations

from pathlib import Path

from repro.analysis.lint import lint_file, lint_paths, lint_source

ALGORITHMS_DIR = Path(__file__).parent.parent / "src" / "repro" / "algorithms"
FIXTURE = Path(__file__).parent / "fixtures" / "bad_push_kernel.py"


def _rules(findings):
    return {f.rule for f in findings}


class TestShippedKernels:
    def test_algorithms_package_is_clean(self):
        findings = lint_paths([ALGORITHMS_DIR])
        assert findings == [], "\n".join(str(f) for f in findings)

    def test_broken_fixture_is_flagged(self):
        findings = lint_file(FIXTURE)
        assert findings, "the seeded raw remote store must be flagged"
        assert "ANL002" in _rules(findings)


class TestRules:
    def test_anl001_store_bypassing_memory(self):
        src = """
def kernel(rt, mem, h, shared):
    def body(t, vs):
        shared[vs + 1] = 0.0
    rt.for_each_thread(body)
"""
        findings = lint_source(src)
        assert _rules(findings) == {"ANL001"}
        assert "shared" in findings[0].message

    def test_anl001_scatter_ufunc_counts_as_store(self):
        src = """
import numpy as np
def kernel(rt, shared):
    def body(t, vs):
        np.add.at(shared, vs * 2, 1.0)
    rt.parallel_for(items, body)
"""
        assert _rules(lint_source(src)) == {"ANL001"}

    def test_anl001_not_raised_when_declared(self):
        src = """
def kernel(rt, mem, h, shared):
    def body(t, vs):
        shared[vs + 1] = 0.0
        mem.write(h, idx=vs + 1, mode="rand")
    rt.for_each_thread(body)
"""
        assert lint_source(src) == []

    def test_local_temporaries_are_exempt(self):
        src = """
import numpy as np
def kernel(rt, mem, h):
    def body(t, vs):
        tmp = np.zeros(8)
        tmp[3] = 1.0
        mem.read(h, idx=vs)
    rt.for_each_thread(body)
"""
        assert lint_source(src) == []

    def test_param_indexed_slots_are_exempt(self):
        """arr[t] / arr[vs] are thread-private by the runtime contract."""
        src = """
def kernel(rt, scratch, owned):
    def body(t, vs):
        scratch[t] = 1.0
        owned[vs] = 0.0
    rt.for_each_thread(body)
"""
        assert lint_source(src) == []

    def test_anl002_push_store_without_atomics(self):
        src = """
def kernel(rt, mem, h, level):
    def push_body(t, vs):
        level[vs + 1] = 0
        mem.write(h, idx=vs + 1, mode="rand")
    rt.parallel_for(items, push_body)
"""
        assert _rules(lint_source(src)) == {"ANL002"}

    def test_anl002_satisfied_by_cas(self):
        src = """
def kernel(rt, mem, h, level):
    def push_body(t, vs):
        mem.cas(h, idx=vs + 1, mode="rand")
        level[vs + 1] = 0
        mem.write(h, idx=vs + 1, mode="rand")
    rt.parallel_for(items, push_body)
"""
        assert lint_source(src) == []

    def test_direction_branch_classification(self):
        """Stores under `if direction == PUSH:` are push even in a
        neutrally-named body."""
        src = """
def kernel(rt, mem, h, val, direction):
    def body(t, vs):
        if direction == PUSH:
            val[vs + 1] = 1
            mem.write(h, idx=vs + 1, mode="rand")
        else:
            val[vs] = 1
            mem.write(h, idx=vs, mode="rand")
    rt.for_each_thread(body)
"""
        findings = lint_source(src)
        assert _rules(findings) == {"ANL002"}

    def test_anl003_ownership_check_in_push(self):
        src = """
def kernel(rt, mem, h, val):
    def push_body(t, vs):
        rt.owned_write_check(vs)
        val[vs + 1] = 1
        mem.cas(h, idx=vs + 1, mode="rand")
        mem.write(h, idx=vs + 1, mode="rand")
    rt.parallel_for(items, push_body)
"""
        assert _rules(lint_source(src)) == {"ANL003"}

    def test_ownership_check_in_pull_is_fine(self):
        src = """
def kernel(rt, mem, h, val):
    def pull_body(t, vs):
        rt.owned_write_check(vs)
        val[vs] = 1
        mem.write(h, idx=vs, mode="rand")
    rt.for_each_thread(pull_body)
"""
        assert lint_source(src) == []

    def test_anl004_missing_barrier(self):
        src = """
def kernel(rt, mem, h):
    def body(t, vs):
        mem.read(h, idx=vs)
    rt.for_each_thread(body, barrier=False)
"""
        assert _rules(lint_source(src)) == {"ANL004"}

    def test_anl004_explicit_barrier_suffices(self):
        src = """
def kernel(rt, mem, h):
    def body(t, vs):
        mem.read(h, idx=vs)
    rt.for_each_thread(body, barrier=False)
    rt.barrier()
"""
        assert lint_source(src) == []

    def test_anl004_caller_barrier_one_level_up_suffices(self):
        # the fused-phases idiom: a helper launches barrier-less regions
        # and every caller closes the epoch itself (mirrors ANL005's
        # one-level helper expansion)
        src = """
def fused(rt, mem, h):
    def body(t, vs):
        mem.read(h, idx=vs)
    rt.for_each_thread(body, barrier=False)

def kernel(rt, mem, h):
    fused(rt, mem, h)
    rt.barrier()
"""
        assert lint_source(src) == []

    def test_anl004_caller_without_barrier_still_flagged(self):
        src = """
def fused(rt, mem, h):
    def body(t, vs):
        mem.read(h, idx=vs)
    rt.for_each_thread(body, barrier=False)

def kernel(rt, mem, h):
    fused(rt, mem, h)
"""
        findings = lint_source(src)
        assert _rules(findings) == {"ANL004"}
        assert "callers" in findings[0].message

    def test_anl004_one_bad_caller_among_good_ones_flags(self):
        # every caller must barrier; a single leaky call site taints the
        # helper
        src = """
def fused(rt, mem, h):
    def body(t, vs):
        mem.read(h, idx=vs)
    rt.for_each_thread(body, barrier=False)

def kernel_a(rt, mem, h):
    fused(rt, mem, h)
    rt.barrier()

def kernel_b(rt, mem, h):
    fused(rt, mem, h)
"""
        assert _rules(lint_source(src)) == {"ANL004"}

    def test_anl004_uncalled_helper_is_flagged(self):
        # no caller at all means nobody closes the epoch
        src = """
def fused(rt, mem, h):
    def body(t, vs):
        mem.read(h, idx=vs)
    rt.for_each_thread(body, barrier=False)
"""
        assert _rules(lint_source(src)) == {"ANL004"}

    def test_anl004_partial_caller_without_barrier_flagged(self):
        # a caller that only *references* the helper through
        # functools.partial is still a caller for the all-callers check
        src = """
def fused(rt, mem, h, alpha):
    def body(t, vs):
        mem.read(h, idx=vs)
    rt.for_each_thread(body, barrier=False)

def kernel(rt, mem, h, schedule):
    step = partial(fused, rt, mem, h)
    schedule(step)
"""
        assert _rules(lint_source(src)) == {"ANL004"}

    def test_anl004_partial_caller_with_barrier_suffices(self):
        src = """
def fused(rt, mem, h, alpha):
    def body(t, vs):
        mem.read(h, idx=vs)
    rt.for_each_thread(body, barrier=False)

def kernel(rt, mem, h, schedule):
    step = partial(fused, rt, mem, h)
    schedule(step)
    rt.barrier()
"""
        assert lint_source(src) == []

    def test_anl004_lambda_caller_without_barrier_flagged(self):
        src = """
def fused(rt, mem, h):
    def body(t, vs):
        mem.read(h, idx=vs)
    rt.for_each_thread(body, barrier=False)

def kernel(rt, mem, h, schedule):
    schedule(lambda: fused(rt, mem, h))
"""
        assert _rules(lint_source(src)) == {"ANL004"}

    def test_anl004_lambda_caller_with_barrier_suffices(self):
        src = """
def fused(rt, mem, h):
    def body(t, vs):
        mem.read(h, idx=vs)
    rt.for_each_thread(body, barrier=False)

def kernel(rt, mem, h, schedule):
    schedule(lambda: fused(rt, mem, h))
    rt.barrier()
"""
        assert lint_source(src) == []

    def test_partial_wrapped_region_body_is_resolved(self):
        # rt.for_each_thread(partial(helper, ...)) must unwrap to the
        # helper so body rules still apply
        src = """
def kernel(rt, mem, h, shared):
    def helper(alpha, lo, hi):
        shared[lo:hi] = alpha
    rt.for_each_thread(partial(helper, 2.0))
"""
        assert _rules(lint_source(src)) == {"ANL001"}

    def test_lambda_trampoline_is_resolved(self):
        src = """
def kernel(rt, mem, h, shared):
    def helper(lo, hi):
        shared[lo:hi] = 0.0
    rt.sequential(lambda: helper(0, 8))
"""
        assert _rules(lint_source(src)) == {"ANL001"}

    def test_syntax_error_reported_not_raised(self):
        findings = lint_source("def broken(:\n")
        assert _rules(findings) == {"ANL000"}


class TestCLIExitCodes:
    def test_lint_clean_kernels_exit_zero(self):
        from repro.__main__ import main
        assert main(["analyze", "--lint", str(ALGORITHMS_DIR)]) == 0

    def test_lint_broken_fixture_exit_nonzero(self, capsys):
        from repro.__main__ import main
        assert main(["analyze", "--lint", str(FIXTURE)]) != 0
        assert "ANL002" in capsys.readouterr().out


class TestANL005:
    def test_untagged_send_in_superstep_body(self):
        src = """
def kernel(g, rt):
    def body(p):
        rt.send(1, (1, 2), nbytes=16)
    rt.superstep(body)
"""
        findings = lint_source(src)
        assert _rules(findings) == {"ANL005"}
        assert "tag=" in findings[0].message

    def test_windowless_rma_verbs(self):
        src = """
def kernel(g, rt):
    def body(p):
        rt.accumulate(1, [1.0], idx=[0], dtype="float")
        rt.put(0, [1], idx=[0])
        rt.rma_accumulate(1, 4, idx=[0])
    rt.superstep(body)
"""
        findings = lint_source(src)
        assert [f.rule for f in findings] == ["ANL005"] * 3
        assert all("window=" in f.message for f in findings)

    def test_helper_called_from_body_is_scanned(self):
        src = """
def kernel(g, rt):
    def flush(q):
        rt.send(q, None, nbytes=8)
    def body(p):
        flush(p)
    rt.superstep(body)
"""
        assert _rules(lint_source(src)) == {"ANL005"}

    def test_tagged_and_windowed_calls_are_clean(self):
        src = """
def kernel(g, rt):
    def body(p):
        rt.send(1, None, nbytes=8, tag="disc")
        rt.accumulate(1, [1.0], window="acc", idx=[0], dtype="float")
        rt.put(0, [1], window="acc", idx=[0])
    rt.superstep(body)
"""
        assert lint_source(src) == []

    def test_ufunc_accumulate_not_confused(self):
        src = """
import numpy as np
import itertools

def kernel(g, rt):
    def body(p):
        np.add.accumulate([1, 2])
        list(itertools.accumulate([1, 2]))
    rt.superstep(body)
"""
        assert lint_source(src) == []

    def test_comm_outside_superstep_not_flagged(self):
        # ANL005 is scoped to superstep bodies; module-level helpers that
        # are never launched as bodies are out of its jurisdiction
        src = """
def helper(rt):
    rt.send(1, None, nbytes=8)
"""
        assert lint_source(src) == []


class TestANL006:
    def test_store_outside_any_region_is_flagged(self):
        # the seeded bug: a master-step store issued directly between
        # regions -- no boundary for checkpoint rollback to undo it
        src = """
def kernel(rt, mem, h):
    def body(t, vs):
        mem.read(h, idx=vs)
    rt.for_each_thread(body)
    mem.write(h, idx=0, mode="rand")
"""
        findings = lint_source(src)
        assert _rules(findings) == {"ANL006"}
        assert "checkpoint" in findings[0].message

    def test_atomic_verbs_outside_regions_are_flagged(self):
        src = """
def kernel(rt, mem, h):
    mem.cas(h, idx=0, mode="rand")
    mem.faa(h, idx=1, mode="rand")
"""
        findings = lint_source(src)
        assert _rules(findings) == {"ANL006"}
        assert "cas" in findings[0].message and "faa" in findings[0].message

    def test_store_inside_region_body_is_clean(self):
        src = """
def kernel(rt, mem, h):
    def body(t, vs):
        mem.write(h, idx=vs, mode="rand")
    rt.for_each_thread(body)
"""
        assert lint_source(src) == []

    def test_sequential_region_body_is_clean(self):
        # the mst_prim fix pattern: wrap the master-step store in
        # rt.sequential so it lands inside a traced region
        src = """
def kernel(rt, mem, h):
    def mark(u=0):
        mem.write(h, idx=u, mode="rand")
    rt.sequential(mark)
"""
        assert lint_source(src) == []

    def test_helper_called_from_body_is_clean(self):
        # one-level expansion, as in ANL004/ANL005
        src = """
def kernel(rt, mem, h):
    def relax(w):
        mem.cas(h, idx=w, mode="rand")
    def body(t, vs):
        for w in vs:
            relax(w)
    rt.parallel_for(items, body)
"""
        assert lint_source(src) == []

    def test_if_else_double_def_body_is_clean(self):
        # both branches define `body`; only one wins static scope
        # resolution, but name-based coverage must clear both
        src = """
def kernel(rt, mem, h, direction):
    if direction == PULL:
        def body(t, vs):
            mem.write(h, idx=vs, mode="rand")
    else:
        def body(t, vs):
            mem.cas(h, idx=vs + 1, mode="rand")
            mem.write(h, idx=vs + 1, mode="rand")
    rt.for_each_thread(body)
"""
        assert lint_source(src) == []

    def test_superstep_body_store_is_clean(self):
        src = """
def kernel(g, rt, mem, h):
    def body(p):
        mem.write(h, idx=p, mode="rand")
    rt.superstep(body)
"""
        assert lint_source(src) == []

    def test_store_helper_never_launched_is_flagged(self):
        src = """
def kernel(rt, mem, h):
    def orphan():
        mem.write(h, idx=3, mode="rand")
    orphan()
"""
        findings = lint_source(src)
        assert _rules(findings) == {"ANL006"}
