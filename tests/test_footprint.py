"""Tests for the representation-footprint accounting."""

import pytest

from repro.graph.footprint import Footprint, footprint


class TestFootprint:
    def test_cell_counts_match_paper_formulas(self, comm_graph):
        f = footprint(comm_graph, P=8)
        assert f.csr_cells == comm_graph.n + 2 * comm_graph.m
        assert f.pa_cells == 2 * comm_graph.n + 2 * comm_graph.m

    def test_pa_overhead_is_n_cells(self, comm_graph):
        f = footprint(comm_graph, P=8)
        assert f.pa_cells - f.csr_cells == comm_graph.n
        assert 0 < f.pa_overhead_fraction < 1

    def test_weighted_graph_counts_weights(self, tiny_weighted, tiny_graph):
        assert footprint(tiny_weighted).weights_cells == 2 * tiny_weighted.m
        assert footprint(tiny_graph).weights_cells == 0

    def test_mp_bound_shrinks_with_P(self, comm_graph):
        assert (footprint(comm_graph, P=32).mp_buffer_cells_bound
                < footprint(comm_graph, P=4).mp_buffer_cells_bound)

    def test_rma_is_constant(self, comm_graph):
        assert footprint(comm_graph, P=4).rma_buffer_cells == 1

    def test_bytes(self, comm_graph):
        f = footprint(comm_graph)
        assert f.csr_bytes == 8 * f.csr_cells

    def test_as_row(self, comm_graph):
        row = footprint(comm_graph).as_row()
        assert "PA overhead" in row and "CSR cells" in row

    def test_invalid_P(self, comm_graph):
        with pytest.raises(ValueError):
            footprint(comm_graph, P=0)
