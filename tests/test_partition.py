"""Unit + property tests for 1D partitioning and the PA representation."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.graph import Partition1D, PartitionAwareCSR, from_edges


class TestPartition1D:
    def test_block_sizes_balanced(self):
        p = Partition1D(10, 3)
        sizes = [p.size(t) for t in range(3)]
        assert sum(sizes) == 10 and max(sizes) - min(sizes) <= 1

    def test_owner_scalar_and_vector(self):
        p = Partition1D(10, 2)
        assert p.owner(0) == 0 and p.owner(9) == 1
        assert np.array_equal(p.owner(np.array([0, 9])), [0, 1])

    def test_owned_covers_all(self):
        p = Partition1D(17, 4)
        allv = np.concatenate([p.owned(t) for t in range(4)])
        assert np.array_equal(np.sort(allv), np.arange(17))

    def test_owned_slice(self):
        p = Partition1D(10, 2)
        assert p.owned_slice(0) == slice(0, 5)

    def test_is_local(self):
        p = Partition1D(10, 2)
        assert p.is_local(0, 4) and not p.is_local(0, 5)
        assert np.array_equal(p.is_local(1, np.array([4, 5])), [False, True])

    def test_more_threads_than_vertices(self):
        p = Partition1D(2, 5)
        assert sum(p.size(t) for t in range(5)) == 2

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            Partition1D(10, 0)
        with pytest.raises(ValueError):
            Partition1D(-1, 2)

    def test_group_by_owner(self):
        p = Partition1D(10, 2)
        groups = p.group_by_owner(np.array([7, 1, 3, 9]))
        assert list(groups[0]) == [1, 3] and list(groups[1]) == [7, 9]

    @given(st.integers(1, 200), st.integers(1, 16))
    def test_owner_of_owned_is_self(self, n, P):
        p = Partition1D(n, P)
        for t in range(P):
            owned = p.owned(t)
            if len(owned):
                assert np.all(p.owner(owned) == t)

    @given(st.integers(1, 200), st.integers(1, 16))
    def test_starts_monotone(self, n, P):
        p = Partition1D(n, P)
        assert p.starts[0] == 0 and p.starts[-1] == n
        assert np.all(np.diff(p.starts) >= 0)


class TestBorderVertices:
    def test_all_local_when_single_thread(self, comm_graph):
        p = Partition1D(comm_graph.n, 1)
        assert len(p.border_vertices(comm_graph)) == 0

    def test_border_detection(self):
        # path 0-1 | 2-3 partitioned in half: 1-2 edge crosses
        g = from_edges(4, [(0, 1), (1, 2), (2, 3)])
        p = Partition1D(4, 2)
        assert list(p.border_vertices(g)) == [1, 2]

    def test_border_grows_with_threads(self, comm_graph):
        p2 = Partition1D(comm_graph.n, 2)
        p8 = Partition1D(comm_graph.n, 8)
        assert (len(p8.border_vertices(comm_graph))
                >= len(p2.border_vertices(comm_graph)))


class TestPartitionAwareCSR:
    def test_split_correct(self, comm_graph):
        part = Partition1D(comm_graph.n, 4)
        pa = PartitionAwareCSR(comm_graph, part)
        for v in range(comm_graph.n):
            t = part.owner(v)
            local = pa.local_neighbors(v)
            remote = pa.remote_neighbors(v)
            assert np.all(part.owner(local) == t) if len(local) else True
            assert np.all(part.owner(remote) != t) if len(remote) else True
            combined = np.sort(np.concatenate([local, remote]))
            assert np.array_equal(combined, comm_graph.neighbors(v))

    def test_each_side_stays_sorted(self, comm_graph):
        pa = PartitionAwareCSR(comm_graph, Partition1D(comm_graph.n, 4))
        for v in range(comm_graph.n):
            assert np.all(np.diff(pa.local_neighbors(v)) > 0)
            assert np.all(np.diff(pa.remote_neighbors(v)) > 0)

    def test_cells_are_2n_plus_2m(self, comm_graph):
        pa = PartitionAwareCSR(comm_graph, Partition1D(comm_graph.n, 4))
        assert pa.n_cells == 2 * comm_graph.n + 2 * comm_graph.m
        assert pa.n_cells == comm_graph.n_cells + comm_graph.n

    def test_counts_partition_edges(self, comm_graph):
        pa = PartitionAwareCSR(comm_graph, Partition1D(comm_graph.n, 4))
        assert (pa.local_edge_count() + pa.remote_edge_count()
                == 2 * comm_graph.m)

    def test_single_thread_all_local(self, comm_graph):
        pa = PartitionAwareCSR(comm_graph, Partition1D(comm_graph.n, 1))
        assert pa.remote_edge_count() == 0

    def test_weights_follow_split(self):
        g = from_edges(4, [(0, 1), (0, 2), (0, 3)], weights=[1.0, 2.0, 3.0])
        pa = PartitionAwareCSR(g, Partition1D(4, 2))
        assert list(pa.local_weights(0)) == [1.0]       # neighbor 1 is local
        assert list(pa.remote_weights(0)) == [2.0, 3.0]

    def test_mismatched_n_rejected(self, comm_graph):
        with pytest.raises(ValueError):
            PartitionAwareCSR(comm_graph, Partition1D(comm_graph.n + 1, 2))
