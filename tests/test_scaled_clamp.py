"""The harness scale caps must clamp *loudly* (no silent ``min``)."""

from __future__ import annotations

import warnings

import pytest

from repro.harness.config import clamped_scale


class TestClampedScale:
    def test_within_cap_is_honored_silently(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert clamped_scale(9, 11, reason="quadratic kernel") == 9
            assert clamped_scale(11, 11, reason="quadratic kernel") == 11

    def test_exceeding_cap_warns_and_clamps(self):
        with pytest.warns(RuntimeWarning) as record:
            assert clamped_scale(20, 11, reason="quadratic kernel") == 11
        [w] = record
        msg = str(w.message)
        assert "20" in msg and "11" in msg
        assert "quadratic kernel" in msg

    def test_warning_points_at_the_call_site(self):
        # stacklevel=2: the warning must name this file, not config.py
        with pytest.warns(RuntimeWarning) as record:
            clamped_scale(99, 10, reason="cap")
        assert record[0].filename == __file__
