"""Tests for the dynamic race detector (repro-tsan) and the PRAM cross-check."""

from __future__ import annotations

import importlib.util
from pathlib import Path

import numpy as np
import pytest

from repro.analysis import (
    ALGORITHMS, RaceError, analyze_algorithms, attach_race_detector, crosscheck,
)
from repro.analysis.race import RaceReport
from tests.conftest import make_runtime

FIXTURE = Path(__file__).parent / "fixtures" / "bad_push_kernel.py"


def _load_broken_kernel():
    spec = importlib.util.spec_from_file_location("bad_push_kernel", FIXTURE)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


class TestDetectorMechanics:
    def test_seeded_race_is_flagged(self, er_graph):
        """The deliberately-broken push kernel must light up."""
        rt = make_runtime(er_graph, P=4)
        det = attach_race_detector(rt)
        _load_broken_kernel().broken_push_accumulate(er_graph, rt)
        report = det.report()
        assert not report.clean
        assert {r.kind for r in report.races} == {"ww"}
        assert all(r.handle == "broken.acc" for r in report.races)
        assert report.total_racy_addresses > 0

    def test_raise_on_race_pinpoints_the_epoch(self, er_graph):
        rt = make_runtime(er_graph, P=4)
        attach_race_detector(rt, raise_on_race=True)
        with pytest.raises(RaceError):
            _load_broken_kernel().broken_push_accumulate(er_graph, rt)

    def test_owned_writes_are_clean(self, er_graph):
        """Disjoint per-owner writes are the pull discipline: no races."""
        rt = make_runtime(er_graph, P=4)
        det = attach_race_detector(rt)
        x = np.zeros(er_graph.n)
        h = rt.mem.register("t.x", x)

        def body(t, vs):
            if len(vs):
                rt.mem.write(h, idx=vs, mode="seq")

        rt.for_each_thread(body)
        assert det.report().clean

    def test_owner_write_remote_read_is_benign(self):
        """Pull's paradigm: owner writes v, others read v -- not a race."""
        g_n = 8
        from repro.graph.builder import from_edges
        g = from_edges(g_n, [(0, 1)])
        rt = make_runtime(g, P=2)
        det = attach_race_detector(rt)
        h = rt.mem.register("t.y", np.zeros(g_n))

        def body(t, vs):
            if t == 0:
                rt.mem.write(h, idx=2, mode="rand")   # 2 is owned by t0
            else:
                rt.mem.read(h, idx=2, mode="rand")

        rt.for_each_thread(body)
        assert det.report().clean

    def test_remote_write_read_is_a_race(self):
        from repro.graph.builder import from_edges
        g = from_edges(8, [(0, 1)])
        rt = make_runtime(g, P=2)
        det = attach_race_detector(rt)
        h = rt.mem.register("t.z", np.zeros(8))

        def body(t, vs):
            if t == 0:
                rt.mem.write(h, idx=6, mode="rand")   # 6 is owned by t1
            else:
                rt.mem.read(h, idx=6, mode="rand")

        rt.for_each_thread(body)
        report = det.report()
        assert [r.kind for r in report.races] == ["rw"]

    def test_lock_shields_the_plain_write(self, er_graph):
        rt = make_runtime(er_graph, P=4)
        det = attach_race_detector(rt)
        h = rt.mem.register("t.locked", np.zeros(er_graph.n))

        def body(t, vs):
            rt.mem.lock(h, idx=0, mode="rand")
            rt.mem.write(h, idx=0, mode="rand")

        rt.for_each_thread(body)
        assert det.report().clean

    def test_plain_write_racing_an_atomic_is_mixed(self, er_graph):
        rt = make_runtime(er_graph, P=2)
        det = attach_race_detector(rt)
        h = rt.mem.register("t.mixed", np.zeros(er_graph.n))

        def body(t, vs):
            if t == 0:
                rt.mem.faa(h, idx=0, mode="rand")
            else:
                rt.mem.write(h, idx=0, mode="rand")

        rt.for_each_thread(body)
        kinds = {r.kind for r in det.report().races}
        assert kinds == {"mixed"}

    def test_covers_extends_protection_across_handles(self, er_graph):
        """cas(h1, covers=[(h2, idx)]) shields the companion store."""
        rt = make_runtime(er_graph, P=4)
        det = attach_race_detector(rt)
        h1 = rt.mem.register("t.guard", np.zeros(er_graph.n))
        h2 = rt.mem.register("t.payload", np.zeros(er_graph.n))

        def body(t, vs):
            rt.mem.cas(h1, idx=0, mode="rand", covers=[(h2, 0)])
            rt.mem.write(h2, idx=0, mode="rand")

        rt.for_each_thread(body)
        assert det.report().clean

        # the same store without the covers declaration must race
        rt2 = make_runtime(er_graph, P=4)
        det2 = attach_race_detector(rt2)
        h1b = rt2.mem.register("t.guard", np.zeros(er_graph.n))
        h2b = rt2.mem.register("t.payload", np.zeros(er_graph.n))

        def body2(t, vs):
            rt2.mem.cas(h1b, idx=0, mode="rand")
            rt2.mem.write(h2b, idx=0, mode="rand")

        rt2.for_each_thread(body2)
        assert not det2.report().clean

    def test_master_context_accesses_are_skipped(self, er_graph):
        """Writes between regions (frontier merges) cannot race."""
        rt = make_runtime(er_graph, P=4)
        det = attach_race_detector(rt)
        h = rt.mem.register("t.master", np.zeros(er_graph.n))
        rt.mem.write(h, idx=np.arange(er_graph.n), mode="seq")
        rt.barrier()
        rt.mem.write(h, idx=np.arange(er_graph.n), mode="seq")
        rt.barrier()
        assert det.report().clean

    def test_position_blind_writes_are_counted(self, er_graph):
        rt = make_runtime(er_graph, P=2)
        det = attach_race_detector(rt)
        h = rt.mem.register("t.blind", np.zeros(er_graph.n))

        def body(t, vs):
            rt.mem.write(h, count=5, mode="rand")

        rt.for_each_thread(body)
        assert det.unattributed_writes == 10

    def test_detector_is_accounting_transparent(self, er_graph):
        """Counters and simulated time are identical with the proxy on."""
        from repro.algorithms import pagerank

        rt_plain = make_runtime(er_graph, P=4)
        r_plain = pagerank(er_graph, rt_plain, direction="push", iterations=3)
        rt_det = make_runtime(er_graph, P=4)
        attach_race_detector(rt_det)
        r_det = pagerank(er_graph, rt_det, direction="push", iterations=3)

        assert r_det.counters.to_dict() == r_plain.counters.to_dict()
        assert r_det.time == pytest.approx(r_plain.time)
        assert np.allclose(r_det.ranks, r_plain.ranks)


class TestStrictCovers:
    """strict_covers=True: a covers= declaration must be followed by the
    covered companion write before the declaring thread's barrier."""

    def test_dangling_declaration_is_rejected(self, er_graph):
        rt = make_runtime(er_graph, P=2)
        det = attach_race_detector(rt, strict_covers=True)
        h1 = rt.mem.register("t.guard", np.zeros(er_graph.n))
        h2 = rt.mem.register("t.payload", np.zeros(er_graph.n))

        def body(t, vs):
            # declares a companion store on h2[0] that never happens
            rt.mem.cas(h1, idx=0, mode="rand", covers=[(h2, 0)])

        rt.for_each_thread(body)
        report = det.report()
        assert not report.clean
        assert {r.kind for r in report.races} == {"dangling-cover"}
        assert all(r.handle == "t.payload" for r in report.races)

    def test_honored_declaration_is_clean(self, er_graph):
        rt = make_runtime(er_graph, P=2)
        det = attach_race_detector(rt, strict_covers=True)
        h1 = rt.mem.register("t.guard", np.zeros(er_graph.n))
        h2 = rt.mem.register("t.payload", np.zeros(er_graph.n))

        def body(t, vs):
            rt.mem.cas(h1, idx=0, mode="rand", covers=[(h2, 0)])
            rt.mem.write(h2, idx=0, mode="rand")

        rt.for_each_thread(body)
        assert det.report().clean

    def test_default_mode_tolerates_dangling_declaration(self, er_graph):
        rt = make_runtime(er_graph, P=2)
        det = attach_race_detector(rt)
        h1 = rt.mem.register("t.guard", np.zeros(er_graph.n))
        h2 = rt.mem.register("t.payload", np.zeros(er_graph.n))

        def body(t, vs):
            rt.mem.cas(h1, idx=0, mode="rand", covers=[(h2, 0)])

        rt.for_each_thread(body)
        assert det.report().clean

    def test_lock_self_cover_is_exempt(self, er_graph):
        """A lock's implicit cover of its own lock word is not a
        covers= declaration and needs no companion write."""
        rt = make_runtime(er_graph, P=2)
        det = attach_race_detector(rt, strict_covers=True)
        h = rt.mem.register("t.locked", np.zeros(er_graph.n))

        def body(t, vs):
            rt.mem.lock(h, idx=0, mode="rand")
            rt.mem.write(h, idx=0, mode="rand")

        rt.for_each_thread(body)
        assert det.report().clean


class TestTrianglePushPA:
    """Regression: the TC push-pa plain-vs-atomic race is fixed by the
    two-phase split (ROADMAP item; previously flagged as `mixed`)."""

    def test_push_pa_is_clean_under_the_detector(self, er_graph):
        from repro.algorithms.triangle import triangle_count

        rt = make_runtime(er_graph, P=4)
        det = attach_race_detector(rt)
        r = triangle_count(er_graph, rt, direction="push-pa")
        assert det.report().clean
        # the split keeps the PA contract: cross-partition FAAs remain
        assert r.counters.faa > 0

    def test_push_pa_still_matches_other_directions(self, er_graph):
        from repro.algorithms.triangle import triangle_count

        results = {}
        for d in ("push", "pull", "push-pa"):
            rt = make_runtime(er_graph, P=4)
            results[d] = triangle_count(er_graph, rt, direction=d).per_vertex
        assert np.array_equal(results["push-pa"], results["push"])
        assert np.array_equal(results["push-pa"], results["pull"])


class TestRmatDataset:
    """The dynamic pass extends beyond ER to the registry rmat family."""

    def test_rmat_matrix_clean_within_budget(self):
        import time

        t0 = time.monotonic()
        runs = analyze_algorithms(n=64, P=4, seed=7, dataset="rmat")
        elapsed = time.monotonic() - t0
        assert all(r.report.clean for r in runs), [str(r) for r in runs]
        assert all(r.check.ok for r in runs), [str(r.check) for r in runs]
        # smoke budget: the small-scale rmat matrix must stay cheap
        assert elapsed < 60.0

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ValueError):
            analyze_algorithms(n=32, dataset="not-a-family")


class TestAlgorithmMatrix:
    """The acceptance gate: all 7 algorithms, both directions, P>=4."""

    @pytest.fixture(scope="class")
    def matrix(self):
        return analyze_algorithms(n=96, P=4, seed=7)

    def test_covers_full_matrix(self, matrix):
        assert {(r.algorithm, r.direction) for r in matrix} == {
            (a, d) for a in ALGORITHMS for d in ("push", "pull")}

    def test_zero_races_everywhere(self, matrix):
        dirty = [r for r in matrix if not r.report.clean]
        assert not dirty, "\n".join(
            f"{r.algorithm}/{r.direction}: {r.report.summary()}" for r in dirty)

    def test_pull_has_zero_plain_write_conflicts(self, matrix):
        for r in matrix:
            if r.direction == "pull":
                assert r.report.write_conflicts == 0, (
                    f"{r.algorithm}/pull shows write conflicts")

    def test_observed_conflicts_within_pram_bounds(self, matrix):
        failing = [r for r in matrix if not r.check.ok]
        assert not failing, "\n".join(str(r.check) for r in failing)

    def test_higher_thread_count_still_clean(self):
        runs = analyze_algorithms(n=96, P=8, seed=7,
                                  algorithms=("BFS", "BGC", "SSSP-Δ"))
        assert all(r.report.clean for r in runs)


class TestCrossCheckUnit:
    def test_pull_write_conflicts_fail_hard(self):
        report = RaceReport(epochs=3, write_conflicts=5)
        res = crosscheck("PR", "pull", report, n=100, m=400, d_hat=10, P=4,
                         iterations=5)
        assert not res.ok
        assert "ownership" in res.detail

    def test_push_within_slack_passes(self):
        report = RaceReport(epochs=5, write_conflicts=10, atomic_conflicts=40,
                            read_conflicts=100)
        res = crosscheck("PR", "push", report, n=100, m=400, d_hat=10, P=4,
                         iterations=5)
        assert res.ok

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            crosscheck("NOPE", "push", RaceReport(), n=10, m=10, d_hat=2, P=2)
