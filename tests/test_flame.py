"""Tests for the folded-stack flamegraph exporter.

The folded format must be byte-deterministic and parse in standard
tooling (flamegraph.pl / speedscope): one ``frame;frame;frame count``
line per unique stack, positive integer counts, no empty frames.
Every lane's total width must equal the run's simulated time, so the
graph is a faithful fold of the timeline.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.observability.driver import run_traced
from repro.observability.flame import folded_stacks, write_flame


def _tracer(algorithm="pagerank", **kw):
    _rt, tracer, _resolved, _result = run_traced(algorithm, **kw)
    return tracer


def _parse(lines):
    """(frames tuple, count) per line; asserts the folded grammar."""
    parsed = []
    for line in lines:
        stack, sep, count = line.rpartition(" ")
        assert sep == " ", f"no weight field in {line!r}"
        frames = stack.split(";")
        assert frames and all(frames), f"empty frame in {line!r}"
        n = int(count)
        assert n > 0, "flamegraph.pl rejects non-positive counts"
        parsed.append((tuple(frames), n))
    return parsed


class TestFoldedStacks:
    def test_byte_deterministic(self, tmp_path):
        p1 = write_flame(_tracer("bfs", variant="switching"),
                         str(tmp_path / "a.folded"))
        p2 = write_flame(_tracer("bfs", variant="switching"),
                         str(tmp_path / "b.folded"))
        a, b = Path(p1).read_bytes(), Path(p2).read_bytes()
        assert a and a == b

    @pytest.mark.parametrize("kw", [
        dict(variant="push"),
        dict(variant="pull", dm=True),
        dict(variant="push", dm=True, faults=True),
    ])
    def test_folded_grammar(self, kw):
        parsed = _parse(folded_stacks(_tracer("pagerank", **kw)))
        assert parsed
        root = "dm" if kw.get("dm") else "sm"
        noun = "rank" if kw.get("dm") else "thread"
        for frames, _count in parsed:
            assert frames[0] == root
            assert frames[1].startswith(noun + " ")
        assert len({f for f, _ in parsed}) == len(parsed), "dup stacks"
        assert sorted(f for f, _ in parsed) == [f for f, _ in parsed]

    def test_kernel_phases_are_leaf_frames(self):
        parsed = _parse(folded_stacks(_tracer("pagerank", variant="pull")))
        leaves = {frames[-1] for frames, _ in parsed}
        assert "pr.pull" in leaves and "pr.finalize" in leaves
        assert "[barrier]" in leaves

    def test_off_path_idle_frames_match_critical_path(self):
        # pagerank pull ends in a sequential pr.finalize region: the
        # other lanes fold as [off-path] frames whose total width is
        # the critical-path decomposition's off_path_idle
        from repro.observability import critical_path
        tracer = _tracer("pagerank", variant="pull")
        parsed = _parse(folded_stacks(tracer))
        off = [(f, c) for f, c in parsed if f[-1] == "[off-path]"]
        assert off, "expected [off-path] leaves under a sequential region"
        assert not any(f[-1] == "[idle]" for f, _ in parsed)
        total = critical_path(tracer)["totals"]["off_path_idle"]
        assert sum(c for _, c in off) == pytest.approx(total, abs=len(off))

    def test_lane_widths_equal_simulated_time(self):
        tracer = _tracer("pagerank", variant="push")
        run_time = tracer.rt.time - tracer.start_time
        widths: dict[str, int] = {}
        for frames, count in _parse(folded_stacks(tracer)):
            widths[frames[1]] = widths.get(frames[1], 0) + count
        assert len(widths) == tracer.rt.P
        for lane, total in widths.items():
            # integer rounding of per-stack weights
            assert total == pytest.approx(run_time, abs=len(widths) + 1), lane

    def test_stall_frames_under_faults(self):
        parsed = _parse(folded_stacks(
            _tracer("pagerank", variant="push", dm=True, faults=True)))
        leaves = {frames[-1] for frames, _ in parsed}
        assert "[stall]" in leaves, "the chaos plan must cause recovery"

    def test_empty_trace_writes_empty_file(self, tiny_graph, tmp_path):
        from repro.observability import attach_tracer
        from repro.runtime.sm import SMRuntime
        tracer = attach_tracer(SMRuntime(tiny_graph, P=4))
        assert folded_stacks(tracer) == []
        path = write_flame(tracer, str(tmp_path / "empty.folded"))
        assert Path(path).read_text() == ""
