"""Tests for the executable PRAM of Section 2.1."""

import math

import numpy as np
import pytest

from repro.pram import PRAM
from repro.pram.machine import AccessViolation, PRAMMachine


def idle(P):
    return [[] for _ in range(P)]


class TestStepSemantics:
    def test_reads_see_prestep_memory(self):
        m = PRAMMachine(2, 4)
        m.memory[0] = 7.0
        step = [[("read", 0), ("write", 0, 1.0)], []]
        results = m.step(step)
        assert results[0] == [7.0]          # read the old value
        assert m.memory[0] == 1.0

    def test_time_and_work_accounting(self):
        m = PRAMMachine(3, 4)
        m.step([[("local",)], [("read", 0)], [("write", 1, 2.0)]])
        assert m.time_steps == 1 and m.work == 3

    def test_idle_processors_allowed(self):
        m = PRAMMachine(2, 2)
        m.step([[("write", 0, 5.0)], []])
        assert m.memory[0] == 5.0

    def test_shape_validation(self):
        m = PRAMMachine(2, 2)
        with pytest.raises(ValueError):
            m.step([[]])
        with pytest.raises(ValueError):
            m.step([[("hop", 0)], []])
        with pytest.raises(AccessViolation):
            m.step([[("read", 99)], []])

    def test_bad_init(self):
        with pytest.raises(ValueError):
            PRAMMachine(0, 4)


class TestVariantRules:
    def test_crcw_cb_combines_concurrent_writes(self):
        m = PRAMMachine(3, 2, PRAM.CRCW_CB)
        m.step([[("write", 0, 1.0)], [("write", 0, 2.0)],
                [("write", 0, 4.0)]])
        assert m.memory[0] == 7.0   # sum-combining

    def test_crcw_min_combiner(self):
        m = PRAMMachine(2, 2, PRAM.CRCW_CB, combine=min)
        m.step([[("write", 0, 3.0)], [("write", 0, 1.0)]])
        assert m.memory[0] == 1.0

    def test_crew_allows_concurrent_reads(self):
        m = PRAMMachine(3, 2, PRAM.CREW)
        m.memory[0] = 9.0
        res = m.step([[("read", 0)], [("read", 0)], [("read", 0)]])
        assert [r[0] for r in res] == [9.0, 9.0, 9.0]

    def test_crew_rejects_concurrent_writes(self):
        m = PRAMMachine(2, 2, PRAM.CREW)
        with pytest.raises(AccessViolation):
            m.step([[("write", 0, 1.0)], [("write", 0, 2.0)]])

    def test_erew_rejects_concurrent_reads(self):
        m = PRAMMachine(2, 2, PRAM.EREW)
        with pytest.raises(AccessViolation):
            m.step([[("read", 0)], [("read", 0)]])

    def test_erew_rejects_read_write_mix(self):
        m = PRAMMachine(2, 2, PRAM.EREW)
        with pytest.raises(AccessViolation):
            m.step([[("read", 0)], [("write", 0, 1.0)]])

    def test_erew_allows_disjoint_cells(self):
        m = PRAMMachine(2, 4, PRAM.EREW)
        m.step([[("write", 0, 1.0)], [("write", 1, 2.0)]])
        assert m.memory[0] == 1.0 and m.memory[1] == 2.0


class TestKRelaxation:
    """The Section-4 facts about the push primitive, executed."""

    def test_push_is_one_write_step_on_crcw(self):
        m = PRAMMachine(8, 16, PRAM.CRCW_CB)
        for i, v in enumerate([1.0, 2.0, 3.0, 4.0]):
            m.memory[i] = v
        m.k_relaxation_push([0, 1, 2, 3], target=8)
        assert m.memory[8] == 10.0
        assert m.time_steps == 2   # one read step + one combining write step

    def test_push_illegal_on_crew(self):
        m = PRAMMachine(8, 16, PRAM.CREW)
        m.memory[:4] = [1.0, 2.0, 3.0, 4.0]
        with pytest.raises(AccessViolation):
            m.k_relaxation_push([0, 1, 2, 3], target=8)

    def test_crew_merge_tree_is_legal_and_logarithmic(self):
        k = 8
        m = PRAMMachine(8, 64, PRAM.CREW)
        m.memory[:k] = np.arange(1.0, k + 1)
        m.k_relaxation_push_crew(list(range(k)), target=32, scratch_base=16)
        assert m.memory[32] == sum(range(1, k + 1))
        # 2 steps per tree level + the final copy pair
        assert m.time_steps == 2 * int(math.log2(k)) + 2

    def test_merge_tree_handles_odd_k(self):
        k = 5
        m = PRAMMachine(4, 64, PRAM.CREW)
        m.memory[:k] = np.arange(1.0, k + 1)
        m.k_relaxation_push_crew(list(range(k)), target=40, scratch_base=16)
        assert m.memory[40] == 15.0

    def test_pull_is_conflict_free_even_on_erew(self):
        """Pulling: each processor reads ITS OWN distinct cells and writes
        its own target -- legal on EREW, the Section-3.8 ownership rule."""
        m = PRAMMachine(2, 8, PRAM.EREW)
        m.memory[:4] = [1.0, 2.0, 3.0, 4.0]
        r = m.step([[("read", 0), ("read", 1)], [("read", 2), ("read", 3)]])
        m.step([[("write", 4, sum(r[0]))], [("write", 5, sum(r[1]))]])
        assert m.memory[4] == 3.0 and m.memory[5] == 7.0
