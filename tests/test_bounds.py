"""Theory-vs-measurement: instrumented event counts against Section-4 bounds.

The PRAM analyses of Section 4 predict *orders* for conflicts, atomics
and locks; these tests pin the instrumented implementations to those
bounds with explicit constants, so a regression in either the analysis
evaluators or the instrumentation shows up as a mismatch.
"""

import numpy as np
import pytest

from repro.algorithms import (
    bfs, boman_coloring, boruvka_mst, pagerank, sssp_delta, triangle_count,
)
from repro.algorithms.reference import triangle_per_vertex_reference
from repro.generators import load_dataset
from repro.pram import PRAM, bfs_cost, pagerank_cost, triangle_count_cost
from tests.conftest import make_runtime


@pytest.fixture(scope="module")
def g():
    return load_dataset("ljn", scale=10, seed=5)


@pytest.fixture(scope="module")
def gw():
    return load_dataset("ljn", scale=10, seed=5, weighted=True)


class TestPageRankBounds:
    L = 4

    def test_push_atomics_exactly_match_analysis(self, g):
        rt = make_runtime(g)
        r = pagerank(g, rt, direction="push", iterations=self.L)
        analytic = pagerank_cost("push", PRAM.CRCW_CB, g.n, g.m,
                                 g.max_degree, 8, L=self.L)
        # the O(Lm) bound is tight up to the factor 2 of undirected storage
        assert r.counters.atomics == 2 * analytic.locks

    def test_pull_sync_free_as_analyzed(self, g):
        rt = make_runtime(g)
        r = pagerank(g, rt, direction="pull", iterations=self.L)
        analytic = pagerank_cost("pull", PRAM.CRCW_CB, g.n, g.m,
                                 g.max_degree, 8, L=self.L)
        assert analytic.atomics == analytic.locks == 0
        assert r.counters.atomics == r.counters.locks == 0

    def test_reads_are_theta_Lm(self, g):
        rt = make_runtime(g)
        r = pagerank(g, rt, direction="pull", iterations=self.L)
        lm = self.L * 2 * g.m
        assert lm <= r.counters.reads <= 6 * lm

    def test_work_scales_linearly_in_L(self, g):
        rt = make_runtime(g)
        r1 = pagerank(g, rt, direction="pull", iterations=2)
        rt = make_runtime(g)
        r2 = pagerank(g, rt, direction="pull", iterations=4)
        assert r2.counters.reads == 2 * r1.counters.reads


class TestTriangleBounds:
    def test_push_atomics_bounded_by_m_dhat(self, g):
        rt = make_runtime(g)
        r = triangle_count(g, rt, direction="push")
        analytic = triangle_count_cost("push", PRAM.CRCW_CB, g.n, g.m,
                                       g.max_degree, 8)
        assert 0 < r.counters.atomics <= 2 * analytic.atomics

    def test_push_atomics_equal_witness_count(self, g):
        rt = make_runtime(g)
        r = triangle_count(g, rt, direction="push")
        witnesses = 2 * int(triangle_per_vertex_reference(g).sum())
        assert r.counters.faa == witnesses

    def test_reads_bounded_by_m_dhat_order(self, g):
        rt = make_runtime(g)
        r = triangle_count(g, rt, direction="pull")
        upper = 2 * g.m * g.max_degree  # O(m·d̂) with log probes folded in
        assert r.counters.reads <= 8 * upper


class TestBFSBounds:
    def test_push_cas_at_most_m(self, g):
        rt = make_runtime(g)
        r = bfs(g, rt, 0, direction="push")
        analytic = bfs_cost("push", PRAM.CRCW_CB, g.n, g.m, g.max_degree,
                            8, D=8)
        assert r.counters.cas <= analytic.atomics  # O(m), here <= n claims

    def test_push_scans_each_edge_once(self, g):
        """O(m) total work: every edge entry is scanned exactly once from
        the frontier side (plus the filter merges)."""
        rt = make_runtime(g)
        r = bfs(g, rt, 0, direction="push")
        reached_entries = sum(g.degree(v) for v in range(g.n)
                              if r.level[v] >= 0)
        # adjacency reads = scanned entries exactly
        assert r.counters.reads >= reached_entries

    def test_pull_reads_scale_with_depth(self):
        """Pull's O(Dm) reads: deeper graphs cost proportionally more."""
        shallow = load_dataset("ljn", scale=10, seed=5)
        deep = load_dataset("rca", scale=10, seed=5)
        rt = make_runtime(shallow)
        r_shallow = bfs(shallow, rt, 0, direction="pull")
        root = int(np.argmax(np.diff(deep.offsets)))
        rt = make_runtime(deep)
        r_deep = bfs(deep, rt, root, direction="pull")
        per_edge_shallow = r_shallow.counters.reads / (
            2 * shallow.m * max(r_shallow.iterations, 1))
        per_edge_deep = r_deep.counters.reads / (2 * deep.m
                                                 * max(r_deep.iterations, 1))
        # normalizing by D·m, the two regimes agree within an order
        assert 0.05 < per_edge_shallow / max(per_edge_deep, 1e-9) < 20


class TestSSSPBounds:
    def test_push_locks_at_most_relaxations(self, gw):
        src = int(np.argmax(np.diff(gw.offsets)))
        rt = make_runtime(gw)
        r = sssp_delta(gw, rt, src, direction="push")
        # one lock per improving relaxation <= l_delta relaxations per edge
        assert r.counters.locks <= 2 * gw.m * max(r.inner_iterations, 1)

    def test_pull_locks_near_2m_per_scan_round(self, gw):
        """Table 1's pattern: pull locks track candidate edges (~2m)."""
        src = int(np.argmax(np.diff(gw.offsets)))
        rt = make_runtime(gw)
        r = sssp_delta(gw, rt, src, direction="pull")
        assert r.counters.locks >= 2 * gw.m * 0.5


class TestColoringBounds:
    def test_locks_bounded_by_Lm(self, g):
        rt = make_runtime(g)
        r = boman_coloring(g, rt, direction="push", max_colors=256)
        assert r.counters.locks <= r.iterations * 2 * g.m


class TestMSTBounds:
    def test_push_cas_bounded_by_edge_scans(self, gw):
        rt = make_runtime(gw)
        r = boruvka_mst(gw, rt, direction="push")
        # each iteration scans <= 2m candidate edges; CAS only on improving
        assert r.counters.cas <= r.iterations * 2 * gw.m

    def test_iterations_logarithmic(self, gw):
        rt = make_runtime(gw)
        r = boruvka_mst(gw, rt, direction="pull")
        assert r.iterations <= int(np.ceil(np.log2(gw.n))) + 2
