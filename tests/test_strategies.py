"""Tests for the Section-5 acceleration strategies."""

import numpy as np
import pytest

from repro.algorithms.bfs import bfs
from repro.algorithms.reference import bfs_reference, is_proper_coloring
from repro.generators import community_graph, load_dataset, road_network
from repro.strategies import (
    SwitchPolicy, conflict_removal_coloring, direction_optimizing_bfs,
    frontier_exploit_coloring, pagerank_partition_aware,
    triangle_count_partition_aware,
)
from repro.strategies.partition_awareness import pa_atomics_bounds
from tests.conftest import make_runtime


class TestDirectionOptimizingBFS:
    def test_levels_correct(self, comm_graph):
        ref = bfs_reference(comm_graph, 0)
        rt = make_runtime(comm_graph)
        r = direction_optimizing_bfs(comm_graph, rt, 0)
        assert np.array_equal(r.level, ref)

    def test_switches_on_dense_graph(self):
        g = community_graph(1024, d_bar=16.0, seed=2)
        root = int(np.argmax(np.diff(g.offsets)))
        rt = make_runtime(g, P=8)
        r = direction_optimizing_bfs(g, rt, root)
        assert r.directions[0] == "push" and "pull" in r.directions

    def test_stays_push_on_road_network(self):
        # large enough that a lattice frontier never reaches n/beta
        g = road_network(48, 48, seed=3, weighted=False)
        root = int(np.argmax(np.diff(g.offsets)))
        rt = make_runtime(g)
        r = direction_optimizing_bfs(g, rt, root)
        assert "pull" not in r.directions

    def test_beats_pure_push_on_dense(self):
        g = community_graph(1024, d_bar=16.0, seed=2)
        root = int(np.argmax(np.diff(g.offsets)))
        rt = make_runtime(g, P=8)
        do = direction_optimizing_bfs(g, rt, root)
        rt = make_runtime(g, P=8)
        push = bfs(g, rt, root, direction="push")
        assert do.time < push.time

    def test_policy_hysteresis(self):
        pol = SwitchPolicy(alpha=14, beta=24)
        # fat frontier: enter pull
        assert pol.choose("push", frontier_edges=1000, unexplored_edges=100,
                          frontier_size=500, n=1000) == "pull"
        # small frontier at the end: never enter pull
        assert pol.choose("push", frontier_edges=1000, unexplored_edges=100,
                          frontier_size=3, n=1000) == "push"
        # shrink below n/beta: leave pull
        assert pol.choose("pull", frontier_edges=0, unexplored_edges=0,
                          frontier_size=3, n=1000) == "push"


class TestFrontierExploit:
    @pytest.mark.parametrize("kw", [{}, {"generic_switch": True},
                                    {"greedy_switch": True}])
    def test_always_proper(self, comm_graph, kw):
        rt = make_runtime(comm_graph)
        r = frontier_exploit_coloring(comm_graph, rt, **kw)
        assert is_proper_coloring(comm_graph, r.colors)

    def test_proper_on_disconnected(self, tiny_graph):
        rt = make_runtime(tiny_graph)
        r = frontier_exploit_coloring(tiny_graph, rt)
        assert is_proper_coloring(tiny_graph, r.colors)
        assert np.all(r.colors >= 0)

    def test_dense_needs_more_waves_than_sparse(self):
        dense = load_dataset("orc", scale=10)
        sparse = load_dataset("rca", scale=10)
        rt = make_runtime(dense, P=8)
        it_dense = frontier_exploit_coloring(dense, rt).iterations
        rt = make_runtime(sparse, P=8)
        it_sparse = frontier_exploit_coloring(sparse, rt).iterations
        assert it_sparse < it_dense / 2

    def test_greedy_switch_cuts_iterations(self):
        g = load_dataset("orc", scale=10)
        rt = make_runtime(g, P=8)
        fe = frontier_exploit_coloring(g, rt)
        rt = make_runtime(g, P=8)
        grs = frontier_exploit_coloring(g, rt, greedy_switch=True)
        assert grs.iterations < fe.iterations

    def test_direction_label(self, comm_graph):
        rt = make_runtime(comm_graph)
        r = frontier_exploit_coloring(comm_graph, rt, generic_switch=True)
        assert r.direction == "FE-push+GS"


class TestConflictRemoval:
    @pytest.mark.parametrize("direction", ["push", "pull"])
    def test_single_pass_zero_conflicts(self, comm_graph, direction):
        rt = make_runtime(comm_graph)
        r = conflict_removal_coloring(comm_graph, rt, direction=direction)
        assert is_proper_coloring(comm_graph, r.colors)
        assert r.conflicts_per_iteration == [0]
        assert r.iterations == 1

    def test_on_road_network(self, road_graph):
        rt = make_runtime(road_graph)
        r = conflict_removal_coloring(road_graph, rt)
        assert is_proper_coloring(road_graph, r.colors)


class TestPartitionAwareness:
    def test_pagerank_wrapper(self, comm_graph):
        from repro.algorithms.reference import pagerank_reference
        rt = make_runtime(comm_graph)
        r = pagerank_partition_aware(comm_graph, rt, iterations=5)
        assert np.allclose(r.ranks, pagerank_reference(comm_graph, 5))
        assert r.counters.atomics_batched > 0

    def test_triangle_wrapper(self, comm_graph):
        from repro.algorithms.reference import triangle_per_vertex_reference
        rt = make_runtime(comm_graph)
        r = triangle_count_partition_aware(comm_graph, rt)
        assert np.array_equal(r.per_vertex,
                              triangle_per_vertex_reference(comm_graph))

    def test_bounds_ordering(self, comm_graph):
        lo, actual, hi = pa_atomics_bounds(comm_graph, 4)
        assert lo == 0 and lo <= actual <= hi == 2 * comm_graph.m

    def test_bounds_extremes(self):
        from repro.graph import from_edges
        # two disjoint components, each inside one owner's block: 0 remote
        g = from_edges(4, [(0, 1), (2, 3)])
        assert pa_atomics_bounds(g, 2)[1] == 0
        # a bipartite edge set straddling the block boundary: all remote
        g2 = from_edges(4, [(0, 2), (0, 3), (1, 2), (1, 3)])
        assert pa_atomics_bounds(g2, 2)[1] == 2 * g2.m
