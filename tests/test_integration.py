"""Cross-layer integration tests.

One graph flows through every execution substrate (instrumented SM
runtime, simulated DM machine, algebraic layer, GAS engine) and all
paths must agree on the mathematical result -- the strongest internal
consistency check the repo has.
"""

import numpy as np
import pytest

from repro.algorithms import (
    betweenness_centrality, bfs, boman_coloring, boruvka_mst, pagerank,
    sssp_delta, triangle_count,
)
from repro.algorithms.dm_pagerank import dm_pagerank
from repro.algorithms.dm_triangle import dm_triangle_count
from repro.algorithms.reference import is_proper_coloring
from repro.gas import gas_sssp
from repro.generators import load_dataset
from repro.la import bellman_ford_la, bfs_la, pagerank_la
from repro.machine.cost_model import XC40
from repro.runtime.dm import DMRuntime
from tests.conftest import make_runtime


@pytest.fixture(scope="module")
def g():
    return load_dataset("ljn", scale=9, seed=7)


@pytest.fixture(scope="module")
def gw():
    return load_dataset("ljn", scale=9, seed=7, weighted=True)


class TestPageRankEverywhere:
    def test_four_paths_agree(self, g):
        rt = make_runtime(g, P=4)
        sm = pagerank(g, rt, direction="pull", iterations=6).ranks
        dm_rt = DMRuntime(g.n, P=4, machine=XC40.scaled(64))
        dm = dm_pagerank(g, dm_rt, variant="mp", iterations=6).ranks
        la, _ = pagerank_la(g, 6, layout="csr")
        la2, _ = pagerank_la(g, 6, layout="csc")
        assert np.allclose(sm, dm, atol=1e-12)
        assert np.allclose(sm, la, atol=1e-12)
        assert np.allclose(sm, la2, atol=1e-12)


class TestTrianglesEverywhere:
    def test_sm_and_dm_agree(self, g):
        rt = make_runtime(g, P=4)
        sm = triangle_count(g, rt, direction="pull").per_vertex
        dm_rt = DMRuntime(g.n, P=4, machine=XC40.scaled(64))
        dm = dm_triangle_count(g, dm_rt, variant="rma-push").per_vertex
        assert np.array_equal(sm, dm)


class TestTraversalsEverywhere:
    def test_bfs_matches_la(self, g):
        root = int(np.argmax(np.diff(g.offsets)))
        rt = make_runtime(g, P=4)
        sm = bfs(g, rt, root, direction="push").level
        la, _ = bfs_la(g, root, layout="csc")
        assert np.array_equal(sm, la)

    def test_sssp_three_ways(self, gw):
        src = int(np.argmax(np.diff(gw.offsets)))
        rt = make_runtime(gw, P=4)
        delta = sssp_delta(gw, rt, src, direction="push").dist
        bf, _ = bellman_ford_la(gw, src)
        gas = gas_sssp(gw, src, mode="push")
        gas_d = np.array([gas.values[v] for v in range(gw.n)])
        fin = np.isfinite(delta)
        assert np.array_equal(np.isfinite(bf), fin)
        assert np.allclose(bf[fin], delta[fin])
        assert np.allclose(gas_d[fin], delta[fin])


class TestWholePipeline:
    def test_analysis_pipeline_runs(self, gw):
        """A small end-to-end 'analyst workflow' touching every algorithm."""
        rt = make_runtime(gw, P=4)
        pr = pagerank(gw, rt, direction="pull", iterations=4)
        hub = int(np.argmax(pr.ranks))
        r_bfs = bfs(gw, rt, hub, direction="push")
        r_sssp = sssp_delta(gw, rt, hub, direction="push")
        r_bc = betweenness_centrality(gw, rt, direction="pull", sources=4)
        r_tc = triangle_count(gw, rt, direction="pull")
        r_col = boman_coloring(gw, rt, direction="push")
        r_mst = boruvka_mst(gw, rt, direction="pull")
        # hop distance lower-bounds weighted distance / max weight
        reach = r_bfs.level >= 0
        assert np.array_equal(reach, np.isfinite(r_sssp.dist))
        assert is_proper_coloring(gw, r_col.colors)
        assert r_bc.bc.max() > 0 and r_tc.total > 0
        assert len(r_mst.edges) <= gw.n - 1
        # the shared runtime accumulated time monotonically
        assert rt.time > 0
        total = rt.total_counters()
        assert total.reads > 0 and total.barriers > 0

    def test_counters_partition_by_thread(self, g):
        rt = make_runtime(g, P=4)
        pagerank(g, rt, direction="pull", iterations=2)
        per_thread = [c.reads for c in rt.thread_counters]
        assert sum(per_thread) == rt.total_counters().reads
        assert all(r > 0 for r in per_thread)
