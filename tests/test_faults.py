"""Tests for the seeded fault-injection + recovery layer (repro.runtime.faults).

Four battery sections:

* the window registry and data-carrying staged RMA verbs of DMRuntime;
* determinism -- same (kernel, graph, plan, recovery) => bit-identical
  results, event schedule, and simulated time, across fresh runtimes
  and across ``reset()``;
* each fault class with recovery OFF (the seeded-bug mode: results must
  corrupt, proving the fault has teeth) and ON (results must match the
  sequential references exactly);
* the overhead contract: recovery work is strictly visible in
  ``rt.time`` and fault-free runs are never slowed down.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.dm_bfs import dm_bfs
from repro.algorithms.dm_pagerank import dm_pagerank
from repro.algorithms.dm_sssp import dm_sssp_delta
from repro.algorithms.dm_triangle import dm_triangle_count
from repro.algorithms.reference import (
    bfs_reference, pagerank_reference, sssp_reference,
    triangle_per_vertex_reference,
)
from repro.analysis.dm_race import attach_dm_race_detector
from repro.generators import erdos_renyi
from repro.machine.cost_model import XC40
from repro.runtime.dm import DMRuntime
from repro.runtime.faults import (
    FaultPlan, RecoveryConfig, attach_fault_injector,
)

N = 48
P = 4


@pytest.fixture(scope="module")
def g():
    return erdos_renyi(N, d_bar=4.0, seed=7)


@pytest.fixture(scope="module")
def gw():
    return erdos_renyi(N, d_bar=4.0, seed=7, weighted=True)


def _rt(n: int = N) -> DMRuntime:
    return DMRuntime(n, P, machine=XC40.scaled(64))


# ---------------------------------------------------------------------------
# window registry + data-carrying staged RMA
# ---------------------------------------------------------------------------
class TestWindowRegistry:
    def test_local_accumulate_applies_immediately(self):
        rt = _rt(8)
        acc = np.zeros(8)
        rt.register_window("w", acc)

        def body(p):
            if p == 0:
                rt.accumulate(0, [1.5, 2.5], window="w", idx=[1, 2],
                              dtype="float")
                assert acc[1] == 1.5 and acc[2] == 2.5

        rt.superstep(body)

    def test_remote_accumulate_lands_at_flush(self):
        rt = _rt(8)
        acc = np.zeros(8)
        rt.register_window("w", acc)
        seen = {}

        def body(p):
            if p == 0:
                # owner of index 7 is rank 3 (block partition of 8 over 4)
                rt.accumulate(3, [4.0], window="w", idx=[7], dtype="float")
                seen["before_flush"] = float(acc[7])
                rt.rma_flush()
                seen["after_flush"] = float(acc[7])

        rt.superstep(body)
        assert seen["before_flush"] == 0.0
        assert seen["after_flush"] == 4.0

    def test_remote_put_overwrites(self):
        rt = _rt(8)
        arr = np.full(8, -1, dtype=np.int64)
        rt.register_window("w", arr)

        def body(p):
            if p == 1:
                rt.put(3, [9, 9], window="w", idx=[6, 7])
                rt.rma_flush()

        rt.superstep(body)
        assert arr[6] == 9 and arr[7] == 9 and arr[0] == -1

    def test_unregistered_window_raises(self):
        rt = _rt(8)

        def body(p):
            if p == 0:
                rt.accumulate(0, [1.0], window="nope", idx=[0], dtype="float")

        with pytest.raises(KeyError, match="nope"):
            rt.superstep(body)

    def test_accumulate_charges_rma_counters(self):
        rt = _rt(8)
        acc = np.zeros(8)
        rt.register_window("w", acc)

        def body(p):
            if p == 0:
                rt.accumulate(3, [1.0, 1.0], window="w", idx=[6, 7],
                              dtype="float")
                rt.rma_flush()

        rt.superstep(body)
        c = rt.total_counters()
        assert c.remote_acc_float == 2
        assert c.flushes >= 1


# ---------------------------------------------------------------------------
# determinism
# ---------------------------------------------------------------------------
CHAOS = FaultPlan(seed=3, drop=0.15, duplicate=0.1, delay=0.1, reorder=0.1,
                  rma_lost=0.15, rma_duplicate=0.1, straggler=0.05,
                  crash=0.02)


def _chaos_pr(g, plan=CHAOS, variant="rma-push"):
    rt = _rt()
    inj = attach_fault_injector(rt, plan)
    res = dm_pagerank(g, rt, variant=variant, iterations=3)
    return res, rt, inj


class TestDeterminism:
    def test_same_seed_bit_identical(self, g):
        r1, rt1, i1 = _chaos_pr(g)
        r2, rt2, i2 = _chaos_pr(g)
        assert r1.ranks.tobytes() == r2.ranks.tobytes()
        assert rt1.time == rt2.time
        assert i1.schedule == i2.schedule
        assert i1.stats.to_dict() == i2.stats.to_dict()

    def test_different_seed_different_schedule(self, g):
        from dataclasses import replace
        _, _, i1 = _chaos_pr(g)
        _, _, i2 = _chaos_pr(g, replace(CHAOS, seed=4))
        assert i1.schedule != i2.schedule

    def test_reset_rebinds_the_schedule(self, g):
        rt = _rt()
        inj = attach_fault_injector(rt, CHAOS)
        r1 = dm_pagerank(g, rt, variant="rma-push", iterations=3)
        sched1, stats1 = list(inj.schedule), inj.stats.to_dict()
        rt.reset()
        assert inj.schedule == [] and rt.time == 0.0
        r2 = dm_pagerank(g, rt, variant="rma-push", iterations=3)
        assert r1.ranks.tobytes() == r2.ranks.tobytes()
        assert inj.schedule == sched1
        assert inj.stats.to_dict() == stats1
        # rt.time is NOT asserted bit-equal here: the memory model keeps
        # its cache state across reset on purpose (warm-rerun measurements,
        # see CountingMemory.register); the fault layer itself rebinds.

    def test_schedule_records_events(self, g):
        _, _, inj = _chaos_pr(g)
        kinds = {e[1] for e in inj.schedule}
        assert kinds & {"rma-lost", "rma-replay", "crash", "straggler"}

    def test_plan_label(self):
        assert "drop=0.15" in CHAOS.label()
        with pytest.warns(UserWarning, match="no-op chaos plan"):
            empty = FaultPlan(seed=5)
        assert empty.label().endswith("(none)")


# ---------------------------------------------------------------------------
# fault classes: seeded-bug mode (no recovery) vs recovery
# ---------------------------------------------------------------------------
def _bfs_levels(g, plan, recovery, variant="push"):
    rt = _rt()
    attach_fault_injector(rt, plan, recovery=recovery)
    return dm_bfs(g, rt, root=0, variant=variant), rt


class TestMessageFaults:
    def test_drop_corrupts_without_recovery(self, g):
        ref = bfs_reference(g, 0)
        res, rt = _bfs_levels(g, FaultPlan(seed=0, drop=0.3), None)
        assert rt.faults.stats.dropped > 0
        assert not np.array_equal(res.level, ref)

    def test_drop_recovered_by_retry(self, g):
        ref = bfs_reference(g, 0)
        res, rt = _bfs_levels(g, FaultPlan(seed=0, drop=0.3),
                              RecoveryConfig())
        assert rt.faults.stats.retries > 0
        assert rt.faults.stats.dropped == 0
        assert np.array_equal(res.level, ref)

    def test_delay_reorders_across_supersteps_without_recovery(self, g):
        ref = bfs_reference(g, 0)
        res, rt = _bfs_levels(g, FaultPlan(seed=1, delay=0.4), None)
        assert rt.faults.stats.delayed > 0
        assert not np.array_equal(res.level, ref)

    def test_delay_recovered_by_barrier_wait(self, g):
        ref = bfs_reference(g, 0)
        res, rt = _bfs_levels(g, FaultPlan(seed=1, delay=0.4),
                              RecoveryConfig())
        assert rt.faults.stats.delayed > 0
        assert rt.faults.stats.delivered_late == 0
        assert np.array_equal(res.level, ref)

    def test_duplicate_suppressed_by_dedup(self, g):
        # BFS claims are idempotent, so exercise duplicates on SSSP
        # messages: min-combine absorbs them; the test pins the seq
        # dedup actually firing
        _, rt = _bfs_levels(g, FaultPlan(seed=2, duplicate=0.4),
                            RecoveryConfig())
        s = rt.faults.stats
        assert s.duplicates > 0 and s.dup_suppressed == s.duplicates

    def test_reorder_is_harmless_under_tags(self, g):
        ref = bfs_reference(g, 0)
        res, rt = _bfs_levels(g, FaultPlan(seed=3, reorder=0.5),
                              RecoveryConfig())
        assert rt.faults.stats.reordered > 0
        assert np.array_equal(res.level, ref)


class TestRMAFaults:
    def test_lost_flush_corrupts_pagerank_without_recovery(self, g):
        ref = pagerank_reference(g, iterations=3)
        rt = _rt()
        attach_fault_injector(rt, FaultPlan(seed=0, rma_lost=0.3),
                              recovery=None)
        res = dm_pagerank(g, rt, variant="rma-push", iterations=3)
        assert rt.faults.stats.rma_lost > 0
        assert not np.allclose(res.ranks, ref, atol=1e-9)

    def test_lost_flush_replayed_at_boundary(self, g):
        ref = pagerank_reference(g, iterations=3)
        rt = _rt()
        attach_fault_injector(rt, FaultPlan(seed=0, rma_lost=0.3))
        res = dm_pagerank(g, rt, variant="rma-push", iterations=3)
        assert rt.faults.stats.rma_replayed > 0
        assert np.allclose(res.ranks, ref, atol=1e-9)

    def test_duplicate_faa_double_counts_without_dedup(self, g):
        """The seeded-bug contract: disabling seq dedup MUST corrupt."""
        ref = triangle_per_vertex_reference(g)
        rt = _rt()
        attach_fault_injector(rt, FaultPlan(seed=1, rma_duplicate=0.3),
                              recovery=RecoveryConfig(dedup=False))
        res = dm_triangle_count(g, rt, variant="rma-push")
        s = rt.faults.stats
        assert s.rma_duplicates > 0 and s.rma_dup_suppressed == 0
        assert not np.array_equal(res.per_vertex, ref)
        # duplicated FAAs can only inflate counts, never lose them
        assert (res.per_vertex >= ref).all()
        assert res.per_vertex.sum() > ref.sum()

    def test_duplicate_faa_idempotent_with_dedup(self, g):
        ref = triangle_per_vertex_reference(g)
        rt = _rt()
        attach_fault_injector(rt, FaultPlan(seed=1, rma_duplicate=0.3))
        res = dm_triangle_count(g, rt, variant="rma-push")
        s = rt.faults.stats
        assert s.rma_duplicates > 0
        assert s.rma_dup_suppressed == s.rma_duplicates
        assert np.array_equal(res.per_vertex, ref)


class TestAlltoallvFaults:
    def test_drop_corrupts_mp_pagerank_without_recovery(self, g):
        ref = pagerank_reference(g, iterations=3)
        rt = _rt()
        attach_fault_injector(rt, FaultPlan(seed=0, drop=0.3),
                              recovery=None)
        res = dm_pagerank(g, rt, variant="mp", iterations=3)
        assert rt.faults.stats.dropped > 0
        assert not np.allclose(res.ranks, ref, atol=1e-9)

    def test_drop_retried_with_recovery(self, g):
        ref = pagerank_reference(g, iterations=3)
        rt = _rt()
        attach_fault_injector(rt, FaultPlan(seed=0, drop=0.3))
        res = dm_pagerank(g, rt, variant="mp", iterations=3)
        assert rt.faults.stats.retries > 0
        assert np.allclose(res.ranks, ref, atol=1e-9)

    def test_duplicate_cell_double_applies_without_dedup(self, g):
        ref = pagerank_reference(g, iterations=3)
        rt = _rt()
        attach_fault_injector(rt, FaultPlan(seed=2, duplicate=0.3),
                              recovery=RecoveryConfig(dedup=False))
        res = dm_pagerank(g, rt, variant="mp", iterations=3)
        assert rt.faults.stats.duplicates > 0
        assert not np.allclose(res.ranks, ref, atol=1e-9)


class TestCrashRestart:
    def test_crash_loses_work_without_recovery(self, g):
        ref = triangle_per_vertex_reference(g)
        rt = _rt()
        attach_fault_injector(rt, FaultPlan(seed=2, crash=0.5),
                              recovery=None)
        res = dm_triangle_count(g, rt, variant="rma-pull")
        s = rt.faults.stats
        assert s.crashes > 0 and s.restarts == 0
        assert not np.array_equal(res.per_vertex, ref)

    def test_crash_restart_reruns_exactly(self, g):
        ref = triangle_per_vertex_reference(g)
        rt = _rt()
        attach_fault_injector(rt, FaultPlan(seed=2, crash=0.5))
        res = dm_triangle_count(g, rt, variant="rma-pull")
        s = rt.faults.stats
        assert s.crashes > 0 and s.restarts == s.crashes
        assert np.array_equal(res.per_vertex, ref)

    def test_crash_restart_sssp(self, gw):
        ref = sssp_reference(gw, 0)
        rt = _rt()
        attach_fault_injector(rt, FaultPlan(seed=5, crash=0.1))
        res = dm_sssp_delta(gw, rt, source=0, variant="push")
        assert rt.faults.stats.restarts > 0
        assert np.allclose(res.dist, ref)

    def test_rollback_keeps_epoch_checker_clean(self, g):
        rt = _rt()
        detector = attach_dm_race_detector(rt)
        attach_fault_injector(rt, FaultPlan(seed=2, crash=0.3))
        dm_pagerank(g, rt, variant="rma-push", iterations=3)
        assert rt.faults.stats.crashes > 0
        assert detector.report().clean
        assert detector.pending_unflushed == 0

    def test_checkpoint_restart_off_loses_data(self, g):
        # recovery present (retries, dedup) but rollback disabled: the
        # crashed rank's superstep work is gone and stays gone, and no
        # detection/restart time is charged
        ref = triangle_per_vertex_reference(g)
        rt = _rt()
        attach_fault_injector(rt, FaultPlan(seed=2, crash=0.5),
                              recovery=RecoveryConfig(
                                  checkpoint_restart=False))
        res = dm_triangle_count(g, rt, variant="rma-pull")
        s = rt.faults.stats
        assert s.crashes > 0 and s.restarts == 0
        assert s.backoff_time == 0.0
        assert not np.array_equal(res.per_vertex, ref)


class TestCrashEdgeCases:
    def test_crash_in_superstep_zero_recovers(self, g):
        ref = bfs_reference(g, 0)
        res, rt = _bfs_levels(g, FaultPlan(seed=0, crash=1.0),
                              RecoveryConfig())
        inj = rt.faults
        crashes0 = [e for e in inj.schedule if e[0] == 0 and e[1] == "crash"]
        assert crashes0, "a certain crash must fire in superstep 0"
        assert np.array_equal(res.level, ref)

    def test_all_ranks_crash_same_superstep(self, g):
        # crash=1.0 dooms every rank of every superstep; reruns are not
        # re-drawn, so recovery still converges
        ref = bfs_reference(g, 0)
        res, rt = _bfs_levels(g, FaultPlan(seed=0, crash=1.0),
                              RecoveryConfig())
        s = rt.faults.stats
        by_step: dict[int, int] = {}
        for e in rt.faults.schedule:
            if e[1] == "crash":
                by_step[e[0]] = by_step.get(e[0], 0) + 1
        assert max(by_step.values()) == P
        assert s.restarts == s.crashes
        assert np.array_equal(res.level, ref)

    def test_straggler_and_crash_stack_on_one_rank(self, g):
        # both faults certain: every (rank, superstep) is simultaneously
        # a straggler and a crash victim -- stretch and rollback compose
        rt0 = _rt()
        dm_bfs(g, rt0, root=0, variant="push")
        res, rt = _bfs_levels(g, FaultPlan(seed=0, straggler=1.0, crash=1.0),
                              RecoveryConfig())
        step0 = {(e[1], e[2]) for e in rt.faults.schedule if e[0] == 0}
        ranks = {p for kind, p in step0 if kind == "crash"}
        assert any(("straggler", p) in step0 for p in ranks)
        assert rt.time > rt0.time
        assert np.array_equal(res.level, bfs_reference(g, 0))


class TestStraggler:
    def test_straggler_never_speeds_up(self, g):
        rt0 = _rt()
        base = dm_pagerank(g, rt0, variant="rma-pull", iterations=3)
        rt = _rt()
        attach_fault_injector(rt, FaultPlan(seed=0, straggler=0.2))
        slow = dm_pagerank(g, rt, variant="rma-pull", iterations=3)
        assert rt.faults.stats.stragglers > 0
        assert rt.time >= rt0.time
        assert np.allclose(slow.ranks, base.ranks, atol=1e-12)


# ---------------------------------------------------------------------------
# overhead accounting
# ---------------------------------------------------------------------------
class TestOverheadAccounting:
    def test_costly_recovery_strictly_slower(self, g):
        rt0 = _rt()
        dm_bfs(g, rt0, root=0, variant="push")
        res, rt = _bfs_levels(g, FaultPlan(seed=0, drop=0.3),
                              RecoveryConfig())
        assert rt.faults.stats.costly() > 0
        assert rt.time > rt0.time

    def test_barrier_stall_cannot_hide_under_skew(self, g):
        # delays hit one destination; the wait must survive the BSP max
        rt0 = _rt()
        dm_bfs(g, rt0, root=0, variant="pull")
        res, rt = _bfs_levels(g, FaultPlan(seed=1, delay=0.2),
                              RecoveryConfig(), variant="pull")
        assert rt.faults.stats.delayed > 0
        assert rt.time > rt0.time

    def test_zero_probability_plan_changes_nothing(self, g):
        rt0 = _rt()
        base = dm_pagerank(g, rt0, variant="rma-push", iterations=3)
        rt = _rt()
        with pytest.warns(UserWarning, match="no-op chaos plan"):
            empty = FaultPlan(seed=9)
        inj = attach_fault_injector(rt, empty)
        res = dm_pagerank(g, rt, variant="rma-push", iterations=3)
        assert inj.stats.fired() == 0
        assert res.ranks.tobytes() == base.ranks.tobytes()
        assert rt.time == rt0.time

    def test_backoff_time_is_tallied(self, g):
        _, rt = _bfs_levels(g, FaultPlan(seed=0, drop=0.3),
                            RecoveryConfig())
        s = rt.faults.stats
        assert s.backoff_time > 0
        assert s.backoff_time <= rt.time
